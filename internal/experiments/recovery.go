package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"otpdb"
	"otpdb/internal/metrics"
	"otpdb/internal/recovery"
	"otpdb/internal/storage"
	"otpdb/internal/wal"
)

// This file is E9 (DESIGN.md §4): the durability benchmark. Two
// quantities the recovery subsystem trades in:
//
//   - recovery time as a function of log length, with and without a
//     checkpoint bounding replay — the knob WithCheckpointEvery turns;
//   - commit throughput under each WAL fsync policy against the
//     non-durable baseline — the price of WithDurability.
//
// Both are serialized into BENCH_commit.json by `otpbench -json commit`.

// RecoveryParams sizes E9.
type RecoveryParams struct {
	// LogLengths is the sweep of WAL record counts to recover from.
	LogLengths []int
	// WritesPerTxn is the number of key writes per logged commit.
	WritesPerTxn int
	// ValueBytes is the value size per write.
	ValueBytes int
	// FsyncTxns is the transaction count per fsync-policy cell.
	FsyncTxns int
}

// DefaultRecoveryParams is the tracked configuration.
func DefaultRecoveryParams() RecoveryParams {
	return RecoveryParams{
		LogLengths:   []int{5_000, 20_000, 50_000},
		WritesPerTxn: 2,
		ValueBytes:   64,
		FsyncTxns:    2000,
	}
}

// QuickRecoveryParams shrinks the sweep for CI smoke runs.
func QuickRecoveryParams() RecoveryParams {
	return RecoveryParams{
		LogLengths:   []int{2_000, 5_000},
		WritesPerTxn: 2,
		ValueBytes:   64,
		FsyncTxns:    400,
	}
}

// RecoveryCell is one recovery-time measurement.
type RecoveryCell struct {
	// Records is the number of committed transactions on disk.
	Records int `json:"records"`
	// Checkpointed reports whether a checkpoint at half the log bounded
	// the replay (the WithCheckpointEvery effect).
	Checkpointed bool `json:"checkpointed"`
	// RecoveryMillis is the wall time of Open + Recover.
	RecoveryMillis float64 `json:"recovery_ms"`
	// RecordsPerSec is Records / recovery time.
	RecordsPerSec float64 `json:"records_per_sec"`
}

// FsyncCell is one fsync-policy throughput measurement.
type FsyncCell struct {
	// Policy is "none" (durability off), "off", "group" or "commit".
	Policy string `json:"policy"`
	LatencyStats
}

// RecoveryReport is the E9 payload inside BENCH_commit.json.
type RecoveryReport struct {
	RecoveryTime []RecoveryCell `json:"recovery_time"`
	FsyncPolicy  []FsyncCell    `json:"fsync_policy"`
}

// RecoveryBench runs E9.
func RecoveryBench(p RecoveryParams) (RecoveryReport, error) {
	var rep RecoveryReport
	for _, n := range p.LogLengths {
		for _, checkpointed := range []bool{false, true} {
			cell, err := recoveryTimeCell(p, n, checkpointed)
			if err != nil {
				return rep, fmt.Errorf("recovery time (%d records): %w", n, err)
			}
			rep.RecoveryTime = append(rep.RecoveryTime, cell)
		}
	}
	for _, policy := range []string{"none", "off", "group", "commit"} {
		cell, err := fsyncPolicyCell(p, policy)
		if err != nil {
			return rep, fmt.Errorf("fsync policy %s: %w", policy, err)
		}
		rep.FsyncPolicy = append(rep.FsyncPolicy, cell)
	}
	return rep, nil
}

// recoveryTimeCell builds a data directory holding n committed
// transactions (optionally checkpointed halfway) and measures a cold
// Open + Recover into a fresh store.
func recoveryTimeCell(p RecoveryParams, n int, checkpointed bool) (RecoveryCell, error) {
	dir, err := os.MkdirTemp("", "otpdb-e9-*")
	if err != nil {
		return RecoveryCell{}, err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	d, err := recovery.Open(dir, recovery.Options{Sync: wal.SyncNever})
	if err != nil {
		return RecoveryCell{}, err
	}
	live := storage.NewStore()
	value := make(storage.Value, p.ValueBytes)
	for i := 1; i <= n; i++ {
		writes := make([]storage.ClassKeyValue, p.WritesPerTxn)
		for w := range writes {
			writes[w] = storage.ClassKeyValue{
				Partition: storage.Partition(fmt.Sprintf("p%d", w)),
				Key:       storage.Key(fmt.Sprintf("key-%d", i%512)),
				Value:     value,
			}
		}
		rec := wal.Record{TOIndex: int64(i), Writes: writes}
		if err := d.Append(rec); err != nil {
			return RecoveryCell{}, err
		}
		live.InstallCommit(rec.TOIndex, rec.Writes)
		if checkpointed && i == n/2 {
			if !d.TryBeginCheckpoint() {
				return RecoveryCell{}, fmt.Errorf("checkpoint slot busy")
			}
			if err := d.Checkpoint(live.CheckpointAt(int64(i))); err != nil {
				return RecoveryCell{}, err
			}
		}
	}
	if err := d.Close(); err != nil {
		return RecoveryCell{}, err
	}

	start := time.Now()
	d2, err := recovery.Open(dir, recovery.Options{})
	if err != nil {
		return RecoveryCell{}, err
	}
	store := storage.NewStore()
	base, err := d2.Recover(store)
	elapsed := time.Since(start)
	_ = d2.Close()
	if err != nil {
		return RecoveryCell{}, err
	}
	if base != int64(n) {
		return RecoveryCell{}, fmt.Errorf("recovered to %d, want %d", base, n)
	}
	return RecoveryCell{
		Records:        n,
		Checkpointed:   checkpointed,
		RecoveryMillis: float64(elapsed.Nanoseconds()) / 1e6,
		RecordsPerSec:  float64(n) / elapsed.Seconds(),
	}, nil
}

// fsyncPolicyCell measures end-to-end commit throughput of a single-site
// durable cluster under one fsync policy ("none" = durability off).
func fsyncPolicyCell(p RecoveryParams, policy string) (FsyncCell, error) {
	opts := []otpdb.Option{otpdb.WithReplicas(1)}
	if policy != "none" {
		dir, err := os.MkdirTemp("", "otpdb-e9-fsync-*")
		if err != nil {
			return FsyncCell{}, err
		}
		defer func() { _ = os.RemoveAll(dir) }()
		sync, err := wal.ParseSyncPolicy(policy)
		if err != nil {
			return FsyncCell{}, err
		}
		opts = append(opts, otpdb.WithDurability(dir), otpdb.WithSyncPolicy(sync))
	}
	cluster, err := otpdb.NewCluster(opts...)
	if err != nil {
		return FsyncCell{}, err
	}
	defer cluster.Stop()
	cluster.MustRegisterUpdate(otpdb.Update{
		Name:  "bump",
		Class: "c",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			v, _ := ctx.Read("k")
			next := otpdb.Int64(otpdb.AsInt64(v) + 1)
			return next, ctx.Write("k", next)
		},
	})
	if err := cluster.Start(); err != nil {
		return FsyncCell{}, err
	}
	sess, err := cluster.Session(0)
	if err != nil {
		return FsyncCell{}, err
	}
	ctx := context.Background()
	hist := metrics.NewHistogram()
	start := time.Now()
	for i := 0; i < p.FsyncTxns; i++ {
		res, err := sess.Exec(ctx, "bump")
		if err != nil {
			return FsyncCell{}, err
		}
		hist.Observe(res.Latency)
	}
	elapsed := time.Since(start)
	return FsyncCell{
		Policy:       policy,
		LatencyStats: latencyStats(hist.Summarize(), float64(p.FsyncTxns)/elapsed.Seconds()),
	}, nil
}

// Table renders E9 as the otpbench plain-text tables.
func (r RecoveryReport) Table() Table {
	t := Table{
		Title: "E9 — Durability & recovery (tracked in BENCH_commit.json)",
		Columns: []string{
			"cell", "n", "txn/s or ms", "detail",
		},
	}
	for _, c := range r.RecoveryTime {
		kind := "full log replay"
		if c.Checkpointed {
			kind = "checkpoint + tail"
		}
		t.AddRow("recovery", fmt.Sprintf("%d", c.Records),
			fmt.Sprintf("%.1fms", c.RecoveryMillis),
			fmt.Sprintf("%s, %.0f rec/s", kind, c.RecordsPerSec))
	}
	for _, c := range r.FsyncPolicy {
		t.AddRow("fsync="+c.Policy, fmt.Sprintf("%d", c.Count),
			fmt.Sprintf("%.0f txn/s", c.ThroughputPerSec),
			fmt.Sprintf("mean %.1fµs p99 %.1fµs", c.MeanMicros, c.P99Micros))
	}
	return t
}
