// Package experiments implements the reproduction harness: one runner per
// paper artifact (Figure 1 and the quantitative claims of Sections 1, 3
// and 5), each returning a formatted table with the same rows/series the
// paper reports. cmd/otpbench prints them; bench_test.go wraps them in
// testing.B benchmarks. The experiment index lives in DESIGN.md and the
// measured results in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// Title names the experiment and the paper artifact it reproduces.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, one slice per row.
	Rows [][]string
	// Notes are printed under the table (parameters, interpretation).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string (handy in tests).
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
