package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/consensus"
	"otpdb/internal/db"
	"otpdb/internal/history"
	"otpdb/internal/metrics"
	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
)

// QueriesParams configures the Section 5 experiment: snapshot queries run
// locally without blocking updates while preserving
// 1-copy-serializability; the dirty-read baseline shows why the snapshot
// rule is needed.
type QueriesParams struct {
	// Sites is the cluster size.
	Sites int
	// Classes is the number of conflict classes (the query spans all).
	Classes int
	// TransfersPerSite is the update load per site.
	TransfersPerSite int
	// Queries is the number of cross-class sum queries issued per site
	// while updates run.
	Queries int
}

// DefaultQueriesParams uses two sites and two classes, the minimal
// configuration that exposes the Section 5 anomaly for dirty reads.
func DefaultQueriesParams() QueriesParams {
	return QueriesParams{Sites: 2, Classes: 2, TransfersPerSite: 150, Queries: 60}
}

// queriesRegistry: per-class transfer (conserves the class total) plus a
// cross-class sum query.
func queriesRegistry(classes int) (*sproc.Registry, error) {
	reg := sproc.NewRegistry()
	for c := 0; c < classes; c++ {
		class := sproc.ClassID(fmt.Sprintf("c%d", c))
		err := reg.RegisterUpdate(sproc.Update{
			Name:  "transfer-" + string(class),
			Class: class,
			Fn: func(ctx sproc.UpdateCtx) (storage.Value, error) {
				a, _ := ctx.Read("a")
				b, _ := ctx.Read("b")
				if err := ctx.Write("a", storage.Int64Value(storage.ValueInt64(a)-1)); err != nil {
					return nil, err
				}
				return nil, ctx.Write("b", storage.Int64Value(storage.ValueInt64(b)+1))
			},
		})
		if err != nil {
			return nil, err
		}
	}
	// sumAll models a long-running analytical report: it pauses between
	// reads, so with dirty reads concurrent commits can land inside the
	// scan and tear the total. A Section 5 snapshot is immune: every read
	// resolves against the same definitive index no matter how long the
	// query runs.
	err := reg.RegisterQuery(sproc.Query{
		Name: "sumAll",
		Fn: func(ctx sproc.QueryCtx) (storage.Value, error) {
			var sum int64
			for c := 0; c < classes; c++ {
				class := sproc.ClassID(fmt.Sprintf("c%d", c))
				for _, k := range []storage.Key{"a", "b"} {
					v, _ := ctx.Read(class, k)
					sum += storage.ValueInt64(v)
					time.Sleep(500 * time.Microsecond)
				}
			}
			return storage.Int64Value(sum), nil
		},
	})
	if err != nil {
		return nil, err
	}
	return reg, nil
}

// queriesCell runs the mixed workload in the given query mode and reports
// query latency, update throughput, inconsistent query results and the
// serializability verdict.
func queriesCell(p QueriesParams, mode db.QueryMode) (qLat metrics.Summary, updPerSec float64, inconsistent int, serializable bool, err error) {
	reg, err := queriesRegistry(p.Classes)
	if err != nil {
		return metrics.Summary{}, 0, 0, false, err
	}
	hub := transport.NewHub(p.Sites, transport.WithJitter(500*time.Microsecond), transport.WithSeed(5))
	defer hub.Close()
	rec := history.NewRecorder()
	var reps []*db.Replica
	var stops []func()
	const seedPerKey = 1000
	for i := 0; i < p.Sites; i++ {
		ep := hub.Endpoint(transport.NodeID(i))
		cons := consensus.New(consensus.Config{Endpoint: ep, RoundTimeout: 100 * time.Millisecond})
		cons.Start()
		bc := abcast.NewOptimistic(ep, cons)
		if err := bc.Start(); err != nil {
			return metrics.Summary{}, 0, 0, false, err
		}
		store := storage.NewStore()
		for c := 0; c < p.Classes; c++ {
			part := storage.Partition(fmt.Sprintf("c%d", c))
			store.Load(part, "a", storage.Int64Value(seedPerKey))
			store.Load(part, "b", storage.Int64Value(seedPerKey))
		}
		rep, nerr := db.New(db.Config{
			ID:        transport.NodeID(i),
			Broadcast: bc,
			Registry:  reg,
			Store:     store,
			Queries:   mode,
			History:   rec,
		})
		if nerr != nil {
			return metrics.Summary{}, 0, 0, false, nerr
		}
		rep.Start()
		reps = append(reps, rep)
		stops = append(stops, func() { rep.Stop(); _ = bc.Stop(); cons.Stop() })
	}
	defer func() {
		for _, s := range stops {
			s()
		}
	}()

	expectedTotal := int64(p.Classes * 2 * seedPerKey)
	ctx := context.Background()
	qHist := metrics.NewHistogram()
	var inconsistentCount int

	var wg sync.WaitGroup
	tput := metrics.NewThroughput()
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep *db.Replica) {
			defer wg.Done()
			for j := 0; j < p.TransfersPerSite; j++ {
				class := fmt.Sprintf("c%d", (i+j)%p.Classes)
				if _, err := rep.Exec(ctx, "transfer-"+class); err != nil {
					return
				}
				tput.Inc()
			}
		}(i, rep)
	}
	var qwg sync.WaitGroup
	var qmu sync.Mutex
	for i, rep := range reps {
		qwg.Add(1)
		go func(i int, rep *db.Replica) {
			defer qwg.Done()
			for j := 0; j < p.Queries; j++ {
				start := time.Now()
				v, err := rep.Query(ctx, "sumAll")
				if err != nil {
					return
				}
				qHist.Observe(time.Since(start))
				if storage.ValueInt64(v) != expectedTotal {
					qmu.Lock()
					inconsistentCount++
					qmu.Unlock()
				}
			}
		}(i, rep)
	}
	wg.Wait()
	qwg.Wait()
	updRate := tput.PerSecond()

	// Quiesce before the final history check.
	total := p.Sites * p.TransfersPerSite
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	for _, rep := range reps {
		if err := rep.WaitCommits(wctx, total); err != nil {
			break
		}
	}
	cancel()
	serializable = rec.Check() == nil
	return qHist.Summarize(), updRate, inconsistentCount, serializable, nil
}

// Queries reproduces the Section 5 experiment: snapshot queries versus
// the dirty-read baseline under a concurrent transfer load. Transfers
// conserve totals, so every consistent snapshot sums to the seeded
// amount; dirty reads can observe torn states and break
// 1-copy-serializability.
func Queries(p QueriesParams) (Table, error) {
	if p.Sites == 0 {
		p = DefaultQueriesParams()
	}
	t := Table{
		Title: "E5 — snapshot queries (§5) vs dirty-read baseline",
		Columns: []string{
			"query mode", "query mean", "query p95", "updates/s",
			"torn totals", "1-copy-serializable",
		},
		Notes: []string{
			fmt.Sprintf("%d sites, %d classes, %d transfers/site, %d queries/site",
				p.Sites, p.Classes, p.TransfersPerSite, p.Queries),
			"transfers conserve totals: every consistent snapshot sums to the seed",
		},
	}
	for _, mode := range []db.QueryMode{db.SnapshotQueries, db.DirtyQueries} {
		name := "snapshot (§5)"
		if mode == db.DirtyQueries {
			name = "dirty reads"
		}
		sum, updRate, torn, serializable, err := queriesCell(p, mode)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(name,
			sum.Mean.Round(time.Microsecond).String(),
			sum.P95.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", updRate),
			fmt.Sprintf("%d", torn),
			fmt.Sprintf("%v", serializable),
		)
	}
	return t, nil
}
