package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/db"
	"otpdb/internal/metrics"
	"otpdb/internal/sproc"
	"otpdb/internal/storage"
)

// OverlapParams configures the Section 1 headline experiment: overlapping
// transaction execution with the broadcast's coordination phase hides the
// delivery latency.
type OverlapParams struct {
	// ExecTime is the transaction service time E.
	ExecTime time.Duration
	// ConfirmDelays sweeps the Opt->TO confirmation delay D.
	ConfirmDelays []time.Duration
	// Txns per cell.
	Txns int
}

// DefaultOverlapParams sweeps D around E.
func DefaultOverlapParams() OverlapParams {
	return OverlapParams{
		ExecTime: 4 * time.Millisecond,
		ConfirmDelays: []time.Duration{
			0,
			1 * time.Millisecond,
			2 * time.Millisecond,
			4 * time.Millisecond,
			8 * time.Millisecond,
			16 * time.Millisecond,
		},
		Txns: 40,
	}
}

// overlapCell measures mean commit latency with a scripted broadcast:
// optimistic mode Opt-delivers immediately and confirms after delay D;
// conservative mode delivers both after D (execute-after-order).
func overlapCell(execTime, confirm time.Duration, txns int, optimistic bool) (time.Duration, error) {
	var bc *abcast.Scripted
	var timers sync.WaitGroup
	bc = abcast.NewScripted(0, func(id abcast.MsgID, payload any) {
		if optimistic {
			bc.InjectOpt(id, payload)
			timers.Add(1)
			time.AfterFunc(confirm, func() {
				defer timers.Done()
				bc.InjectTO(id)
			})
			return
		}
		timers.Add(1)
		time.AfterFunc(confirm, func() {
			defer timers.Done()
			bc.InjectOpt(id, payload)
			bc.InjectTO(id)
		})
	})

	reg := sproc.NewRegistry()
	if err := reg.RegisterUpdate(sproc.Update{
		Name:  "work",
		Class: "c",
		Cost:  execTime,
		Fn:    func(sproc.UpdateCtx) (storage.Value, error) { return nil, nil },
	}); err != nil {
		return 0, err
	}
	rep, err := db.New(db.Config{ID: 0, Broadcast: bc, Registry: reg})
	if err != nil {
		return 0, err
	}
	rep.Start()
	defer func() {
		timers.Wait()
		rep.Stop()
		_ = bc.Stop()
	}()

	hist := metrics.NewHistogram()
	ctx := context.Background()
	for i := 0; i < txns; i++ {
		start := time.Now()
		if _, err := rep.Exec(ctx, "work"); err != nil {
			return 0, err
		}
		hist.Observe(time.Since(start))
	}
	return hist.Mean(), nil
}

// Overlap reproduces the Section 1 claim: with optimistic delivery the
// commit latency approaches max(E, D) while conservative processing pays
// E + D; the saving grows with the confirmation delay until D dominates.
func Overlap(p OverlapParams) (Table, error) {
	if p.Txns == 0 {
		p = DefaultOverlapParams()
	}
	t := Table{
		Title: "E3 — commit latency: OTP (overlapped) vs conservative (execute-after-order)",
		Columns: []string{
			"confirm delay D", "OTP mean", "conservative mean", "model max(E,D)", "model E+D", "saving",
		},
		Notes: []string{
			fmt.Sprintf("transaction service time E = %v, %d transactions per cell, one class", p.ExecTime, p.Txns),
			"paper claim (§1): the ABcast coordination is hidden behind execution when D <~ E",
		},
	}
	for _, d := range p.ConfirmDelays {
		optMean, err := overlapCell(p.ExecTime, d, p.Txns, true)
		if err != nil {
			return Table{}, err
		}
		consMean, err := overlapCell(p.ExecTime, d, p.Txns, false)
		if err != nil {
			return Table{}, err
		}
		modelOpt := p.ExecTime
		if d > modelOpt {
			modelOpt = d
		}
		saving := 0.0
		if consMean > 0 {
			saving = 100 * float64(consMean-optMean) / float64(consMean)
		}
		t.AddRow(
			d.String(),
			optMean.Round(time.Microsecond).String(),
			consMean.Round(time.Microsecond).String(),
			modelOpt.String(),
			(p.ExecTime + d).String(),
			fmt.Sprintf("%.1f%%", saving),
		)
	}
	return t, nil
}
