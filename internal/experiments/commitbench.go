package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"otpdb"
	"otpdb/internal/metrics"
	"otpdb/internal/storage"
)

// This file is the tracked commit-path benchmark (DESIGN.md §4, E8): the
// three workloads whose numbers every performance PR must not regress —
// end-to-end commit latency, pipelined throughput by depth, and snapshot
// reads against a deep version chain. `otpbench -json` serializes the
// report to BENCH_commit.json so the repository carries its own
// performance trajectory.

// CommitBenchParams sizes the tracked commit-path benchmark.
type CommitBenchParams struct {
	// Sites is the cluster size for the end-to-end and pipeline cells.
	Sites int
	// Txns is the transaction count per cluster cell.
	Txns int
	// Depths is the pipeline sweep.
	Depths []int
	// SnapshotVersions is the version-chain depth for the snapshot cell.
	SnapshotVersions int
	// SnapshotReads is the number of snapshot reads measured.
	SnapshotReads int
}

// DefaultCommitBenchParams is the tracked configuration.
func DefaultCommitBenchParams() CommitBenchParams {
	return CommitBenchParams{
		Sites:            3,
		Txns:             2000,
		Depths:           []int{1, 8, 32, 128},
		SnapshotVersions: 1000,
		SnapshotReads:    2_000_000,
	}
}

// QuickCommitBenchParams shrinks the sweep for CI smoke runs.
func QuickCommitBenchParams() CommitBenchParams {
	return CommitBenchParams{
		Sites:            3,
		Txns:             400,
		Depths:           []int{1, 8, 32},
		SnapshotVersions: 1000,
		SnapshotReads:    200_000,
	}
}

// LatencyStats is one workload's headline numbers. Latencies are
// microseconds; P50/P99 come from the metrics histogram's exact
// nearest-rank percentiles.
type LatencyStats struct {
	Count            int     `json:"count"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	MeanMicros       float64 `json:"mean_us"`
	P50Micros        float64 `json:"p50_us"`
	P99Micros        float64 `json:"p99_us"`
	MaxMicros        float64 `json:"max_us"`
}

func latencyStats(s metrics.Summary, perSec float64) LatencyStats {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return LatencyStats{
		Count:            s.Count,
		ThroughputPerSec: perSec,
		MeanMicros:       us(s.Mean),
		P50Micros:        us(s.P50),
		P99Micros:        us(s.P99),
		MaxMicros:        us(s.Max),
	}
}

// PipelineStats is one pipeline-depth cell.
type PipelineStats struct {
	Depth int `json:"depth"`
	LatencyStats
}

// SnapshotStats is the snapshot-read cell. Latency percentiles are
// measured over batches of BatchSize reads (one clock read per batch:
// per-read timing would cost more than the read itself) and reported
// per read.
type SnapshotStats struct {
	Versions  int `json:"versions"`
	BatchSize int `json:"batch_size"`
	LatencyStats
}

// CommitBenchReport is the serialized BENCH_commit.json payload.
type CommitBenchReport struct {
	Schema   string          `json:"schema"`
	Go       string          `json:"go"`
	CPUs     int             `json:"cpus"`
	Quick    bool            `json:"quick"`
	EndToEnd LatencyStats    `json:"end_to_end_commit"`
	Pipeline []PipelineStats `json:"pipeline"`
	Snapshot SnapshotStats   `json:"snapshot_read"`
	// Recovery is E9: recovery time vs log length and the fsync-policy
	// throughput cost of durability.
	Recovery *RecoveryReport `json:"recovery,omitempty"`
	// Rejoin is E10: live-rejoin time vs missed backlog, per state-
	// transfer mode (schema v3).
	Rejoin *RejoinReport `json:"rejoin,omitempty"`
	// Reconfig is E11: time to replace a dead site / grow the group
	// through an ordered membership change (schema v4).
	Reconfig *ReconfigReport `json:"reconfig,omitempty"`
	// Shard is E12: aggregate durable throughput at 1..S shard groups
	// and the cross-shard transaction cost sweep (schema v5).
	Shard *ShardReport `json:"shard,omitempty"`
	// Chaos is E13: the seeded fault-injection matrix — invariant
	// pass/fail plus recovery time and commit availability per fault
	// class, and the auto-replacement detect/rebuild split (schema v7).
	Chaos *ChaosReport `json:"chaos,omitempty"`
	// TraceOverhead is the tracing-cost A/B: the E7 end-to-end cell run
	// with and without a trace ring, interleaved, medians over runs
	// (schema v8). The ≤3% budget is asserted in CI's bench-smoke.
	TraceOverhead *TraceOverheadStats `json:"trace_overhead,omitempty"`
}

// TraceOverheadStats is the traced-vs-untraced E7 A/B (DESIGN.md §12):
// both arms run with the metrics registry enabled — the question is
// what the per-span trace ring adds on top of a monitored deployment.
// OverheadPercent is the median paired p50-latency delta (see
// TraceOverheadBench for why p50, not throughput, is the budgeted
// figure); throughput medians ride along for context.
type TraceOverheadStats struct {
	Runs              int     `json:"runs"`
	Txns              int     `json:"txns"`
	UntracedPerSec    float64 `json:"untraced_per_sec"`
	TracedPerSec      float64 `json:"traced_per_sec"`
	UntracedP50Micros float64 `json:"untraced_p50_us"`
	TracedP50Micros   float64 `json:"traced_p50_us"`
	OverheadPercent   float64 `json:"overhead_percent"`
	// NoisePercent is the null calibration: the median |p50 delta| of
	// untraced-vs-untraced pairs on the same box, i.e. what this
	// environment reports when the true difference is zero. An
	// OverheadPercent at or below the noise floor is indistinguishable
	// from zero; CI's budget assert allows it on top of the 3%.
	NoisePercent float64 `json:"noise_percent"`
}

// CommitBench runs the tracked commit-path benchmark.
func CommitBench(p CommitBenchParams, quick bool) (CommitBenchReport, error) {
	rep := CommitBenchReport{
		Schema: "otpdb-bench-commit/v8",
		Go:     runtime.Version(),
		CPUs:   runtime.NumCPU(),
		Quick:  quick,
	}

	e2e, err := endToEndCommitCell(p)
	if err != nil {
		return rep, fmt.Errorf("end-to-end: %w", err)
	}
	rep.EndToEnd = e2e

	for _, depth := range p.Depths {
		perSec, lat, _, _, _, err := pipelineCell(PipelineParams{
			Sites: p.Sites, Txns: p.Txns, Depths: p.Depths,
		}, depth)
		if err != nil {
			return rep, fmt.Errorf("pipeline depth %d: %w", depth, err)
		}
		rep.Pipeline = append(rep.Pipeline, PipelineStats{
			Depth:        depth,
			LatencyStats: latencyStats(lat, perSec),
		})
	}

	rep.Snapshot = snapshotReadCell(p)

	rp := DefaultRecoveryParams()
	if quick {
		rp = QuickRecoveryParams()
	}
	rec, err := RecoveryBench(rp)
	if err != nil {
		return rep, fmt.Errorf("recovery: %w", err)
	}
	rep.Recovery = &rec

	jp := DefaultRejoinParams()
	if quick {
		jp = QuickRejoinParams()
	}
	rj, err := RejoinBench(jp)
	if err != nil {
		return rep, fmt.Errorf("rejoin: %w", err)
	}
	rep.Rejoin = &rj

	cp := DefaultReconfigParams()
	if quick {
		cp = QuickReconfigParams()
	}
	rc, err := ReconfigBench(cp)
	if err != nil {
		return rep, fmt.Errorf("reconfig: %w", err)
	}
	rep.Reconfig = &rc

	sp := DefaultShardBenchParams()
	if quick {
		sp = QuickShardBenchParams()
	}
	sh, err := ShardBench(sp)
	if err != nil {
		return rep, fmt.Errorf("shard: %w", err)
	}
	rep.Shard = &sh

	xp := DefaultChaosBenchParams()
	if quick {
		xp = QuickChaosBenchParams()
	}
	ch, err := ChaosBench(xp)
	if err != nil {
		return rep, fmt.Errorf("chaos: %w", err)
	}
	rep.Chaos = &ch

	to, err := TraceOverheadBench(p)
	if err != nil {
		return rep, fmt.Errorf("trace overhead: %w", err)
	}
	rep.TraceOverhead = &to
	return rep, nil
}

// TraceOverheadBench measures what span recording adds to the E7
// commit path: the end-to-end cell runs in two arms — registry only,
// and registry plus a 4096-span trace ring — using the same 8000×7
// protocol as the §12 registry A/B.
//
// The budgeted figure is the paired p50-latency delta, not the
// throughput delta. A shared runner's throughput swings ±10% between
// back-to-back cells (scheduler interference hits wall-clock
// directly), which buries a 2% effect; the commit latency *median*
// over 8000 observations is immune to interference spikes — they
// land in the tail — and its histogram-bucket resolution (~2%) is
// right at the scale being measured. Arms alternate order between
// pairs so drift biases neither direction, the median over pairs
// shrugs off whole-pair outliers, a discarded warmup pair absorbs
// first-run effects, and negative deltas (the traced arm measuring
// faster — pure noise) clamp to zero.
//
// Even so, a loaded box can push the paired medians apart by more
// than the effect under measurement. The run therefore calibrates its
// own null: three untraced-vs-untraced pairs whose median |delta| is
// what this environment reports for a true difference of zero.
// NoisePercent carries that floor; the CI budget assert is
// overhead ≤ 3% + noise, so a quiet box enforces the budget tightly
// and a box that cannot resolve 3% does not fail the build on its own
// scheduling jitter.
func TraceOverheadBench(p CommitBenchParams) (TraceOverheadStats, error) {
	runs, txns, nullRuns := 7, 8000, 3
	cell := p
	cell.Txns = txns
	arm := func(traced bool) (LatencyStats, error) {
		return endToEndRun(cell, traced)
	}
	for _, traced := range []bool{false, true} { // warmup, discarded
		if _, err := arm(traced); err != nil {
			return TraceOverheadStats{}, err
		}
	}
	untraced := make([]float64, 0, runs)
	traced := make([]float64, 0, runs)
	untracedP50 := make([]float64, 0, runs)
	tracedP50 := make([]float64, 0, runs)
	deltas := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		var u, tr LatencyStats
		for _, arm2 := range []bool{i%2 == 1, i%2 == 0} {
			got, err := arm(arm2)
			if err != nil {
				return TraceOverheadStats{}, err
			}
			if arm2 {
				tr = got
			} else {
				u = got
			}
		}
		untraced = append(untraced, u.ThroughputPerSec)
		traced = append(traced, tr.ThroughputPerSec)
		untracedP50 = append(untracedP50, u.P50Micros)
		tracedP50 = append(tracedP50, tr.P50Micros)
		deltas = append(deltas, (tr.P50Micros-u.P50Micros)/u.P50Micros*100)
	}
	overhead := median(deltas)
	if overhead < 0 {
		overhead = 0
	}
	nullDeltas := make([]float64, 0, nullRuns)
	for i := 0; i < nullRuns; i++ {
		a, err := arm(false)
		if err != nil {
			return TraceOverheadStats{}, err
		}
		b, err := arm(false)
		if err != nil {
			return TraceOverheadStats{}, err
		}
		nullDeltas = append(nullDeltas, math.Abs((b.P50Micros-a.P50Micros)/a.P50Micros*100))
	}
	return TraceOverheadStats{
		Runs:              runs,
		Txns:              txns,
		UntracedPerSec:    median(untraced),
		TracedPerSec:      median(traced),
		UntracedP50Micros: median(untracedP50),
		TracedP50Micros:   median(tracedP50),
		OverheadPercent:   overhead,
		NoisePercent:      median(nullDeltas),
	}, nil
}

// median of a non-empty slice (sorted copy, lower middle for even n).
func median(xs []float64) float64 {
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// endToEndCommitCell measures synchronous full-stack commits: broadcast,
// optimistic execution, consensus confirmation, local commit.
func endToEndCommitCell(p CommitBenchParams) (LatencyStats, error) {
	return endToEndRun(p, false)
}

// endToEndRun is the E7 cell body, parameterized by whether a trace
// ring records spans (the traced arm of TraceOverheadBench).
func endToEndRun(p CommitBenchParams, traced bool) (LatencyStats, error) {
	// The metrics registry stays enabled here, so the tracked E7 numbers
	// carry the instrumentation cost — what a monitored deployment pays
	// (DESIGN.md §12 bounds it against an unregistered run).
	opts := []otpdb.Option{otpdb.WithReplicas(p.Sites), otpdb.WithMetrics(metrics.NewRegistry())}
	if traced {
		opts = append(opts, otpdb.WithTraceRing(metrics.NewTraceRing(4096)))
	}
	cluster, err := otpdb.NewCluster(opts...)
	if err != nil {
		return LatencyStats{}, err
	}
	defer cluster.Stop()
	cluster.MustRegisterUpdate(otpdb.Update{
		Name:  "bump",
		Class: "c",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			v, _ := ctx.Read("k")
			next := otpdb.Int64(otpdb.AsInt64(v) + 1)
			return next, ctx.Write("k", next)
		},
	})
	if err := cluster.Start(); err != nil {
		return LatencyStats{}, err
	}
	sess, err := cluster.Session(0)
	if err != nil {
		return LatencyStats{}, err
	}
	ctx := context.Background()
	hist := metrics.NewHistogram()
	start := time.Now()
	for i := 0; i < p.Txns; i++ {
		res, err := sess.Exec(ctx, "bump")
		if err != nil {
			return LatencyStats{}, err
		}
		hist.Observe(res.Latency)
	}
	elapsed := time.Since(start)
	return latencyStats(hist.Summarize(), float64(p.Txns)/elapsed.Seconds()), nil
}

// snapshotReadCell measures Section 5 snapshot reads against a deep
// version chain, timed in batches.
func snapshotReadCell(p CommitBenchParams) SnapshotStats {
	const batch = 128
	s := storage.NewStore()
	for i := int64(1); i <= int64(p.SnapshotVersions); i++ {
		tx, _ := s.Begin("p", storage.Buffered)
		_ = tx.Write("k", storage.Int64Value(i))
		_ = tx.Commit(i)
	}
	hist := metrics.NewHistogram()
	reads := p.SnapshotReads / batch * batch
	start := time.Now()
	for done := 0; done < reads; done += batch {
		t0 := time.Now()
		for i := 0; i < batch; i++ {
			idx := int64((done+i)%p.SnapshotVersions) + 1
			if _, ok := s.SnapshotRead("p", "k", idx); !ok {
				panic("commitbench: missing version")
			}
		}
		hist.Observe(time.Since(t0) / batch)
	}
	elapsed := time.Since(start)
	return SnapshotStats{
		Versions:  p.SnapshotVersions,
		BatchSize: batch,
		LatencyStats: latencyStats(hist.Summarize(),
			float64(reads)/elapsed.Seconds()),
	}
}

// Table renders the report as the plain-text table otpbench prints.
func (r CommitBenchReport) Table() Table {
	t := Table{
		Title: "E8 — Commit-path benchmark (tracked in BENCH_commit.json)",
		Columns: []string{
			"workload", "n", "txn/s", "mean", "p50", "p99",
		},
		Notes: []string{
			fmt.Sprintf("%s, %d CPU(s); regenerate with: go run ./cmd/otpbench -json commit", r.Go, r.CPUs),
		},
	}
	row := func(name string, s LatencyStats) {
		us := func(f float64) string { return fmt.Sprintf("%.1fµs", f) }
		t.AddRow(name, fmt.Sprintf("%d", s.Count), fmt.Sprintf("%.0f", s.ThroughputPerSec),
			us(s.MeanMicros), us(s.P50Micros), us(s.P99Micros))
	}
	row("end-to-end commit", r.EndToEnd)
	for _, p := range r.Pipeline {
		row(fmt.Sprintf("pipeline depth=%d", p.Depth), p.LatencyStats)
	}
	row(fmt.Sprintf("snapshot read (%d versions)", r.Snapshot.Versions), r.Snapshot.LatencyStats)
	if r.Recovery != nil {
		for _, c := range r.Recovery.FsyncPolicy {
			row("durable commit fsync="+c.Policy, c.LatencyStats)
		}
	}
	if r.Rejoin != nil {
		for _, c := range r.Rejoin.Cells {
			t.AddRow(fmt.Sprintf("rejoin %s missed=%d", c.Mode, c.Missed), fmt.Sprintf("%d", c.Missed),
				fmt.Sprintf("%.0f", c.MissedPerSec), fmt.Sprintf("%.1fms", c.RejoinMillis), "-", "-")
		}
	}
	if r.Reconfig != nil {
		for _, c := range r.Reconfig.Cells {
			t.AddRow(fmt.Sprintf("reconfig %s missed=%d", c.Op, c.Missed), fmt.Sprintf("%d", c.Missed),
				fmt.Sprintf("%.0f", c.MissedPerSec), fmt.Sprintf("%.1fms", c.OpMillis), "-", "-")
		}
	}
	if r.Shard != nil {
		for _, c := range r.Shard.Scale {
			t.AddRow(fmt.Sprintf("shard scale s=%d (%.2fx)", c.Shards, c.SpeedupVs1),
				fmt.Sprintf("%d", c.Count), fmt.Sprintf("%.0f", c.ThroughputPerSec),
				fmt.Sprintf("%.1fµs", c.MeanMicros), fmt.Sprintf("%.1fµs", c.P50Micros),
				fmt.Sprintf("%.1fµs", c.P99Micros))
		}
		for _, c := range r.Shard.Cross {
			t.AddRow(fmt.Sprintf("shard cross=%.0f%% s=%d", c.CrossPercent, c.Shards),
				fmt.Sprintf("%d", c.Count), fmt.Sprintf("%.0f", c.ThroughputPerSec),
				fmt.Sprintf("%.1fµs", c.MeanMicros), fmt.Sprintf("%.1fµs", c.P50Micros),
				fmt.Sprintf("%.1fµs", c.P99Micros))
		}
	}
	if r.Chaos != nil {
		for _, c := range r.Chaos.Scenarios {
			verdict := "pass"
			if !c.Pass {
				verdict = "FAIL"
			}
			t.AddRow(fmt.Sprintf("chaos %s (%s)", c.Scenario, verdict),
				fmt.Sprintf("%d", c.Acked), "-",
				fmt.Sprintf("avail=%.3f", c.Availability), "-", "-")
		}
	}
	if r.TraceOverhead != nil {
		o := r.TraceOverhead
		t.AddRow(fmt.Sprintf("trace overhead (%d×%d A/B)", o.Txns, o.Runs),
			fmt.Sprintf("%d", o.Runs*o.Txns*2), fmt.Sprintf("%.0f", o.TracedPerSec),
			fmt.Sprintf("+%.2f%%", o.OverheadPercent),
			fmt.Sprintf("noise %.2f%%", o.NoisePercent), "-")
	}
	return t
}

// JSON serializes the report (indented, trailing newline) for
// BENCH_commit.json.
func (r CommitBenchReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
