package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"otpdb"
	"otpdb/internal/metrics"
	"otpdb/internal/storage"
)

// This file is the tracked commit-path benchmark (DESIGN.md §4, E8): the
// three workloads whose numbers every performance PR must not regress —
// end-to-end commit latency, pipelined throughput by depth, and snapshot
// reads against a deep version chain. `otpbench -json` serializes the
// report to BENCH_commit.json so the repository carries its own
// performance trajectory.

// CommitBenchParams sizes the tracked commit-path benchmark.
type CommitBenchParams struct {
	// Sites is the cluster size for the end-to-end and pipeline cells.
	Sites int
	// Txns is the transaction count per cluster cell.
	Txns int
	// Depths is the pipeline sweep.
	Depths []int
	// SnapshotVersions is the version-chain depth for the snapshot cell.
	SnapshotVersions int
	// SnapshotReads is the number of snapshot reads measured.
	SnapshotReads int
}

// DefaultCommitBenchParams is the tracked configuration.
func DefaultCommitBenchParams() CommitBenchParams {
	return CommitBenchParams{
		Sites:            3,
		Txns:             2000,
		Depths:           []int{1, 8, 32, 128},
		SnapshotVersions: 1000,
		SnapshotReads:    2_000_000,
	}
}

// QuickCommitBenchParams shrinks the sweep for CI smoke runs.
func QuickCommitBenchParams() CommitBenchParams {
	return CommitBenchParams{
		Sites:            3,
		Txns:             400,
		Depths:           []int{1, 8, 32},
		SnapshotVersions: 1000,
		SnapshotReads:    200_000,
	}
}

// LatencyStats is one workload's headline numbers. Latencies are
// microseconds; P50/P99 come from the metrics histogram's exact
// nearest-rank percentiles.
type LatencyStats struct {
	Count            int     `json:"count"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	MeanMicros       float64 `json:"mean_us"`
	P50Micros        float64 `json:"p50_us"`
	P99Micros        float64 `json:"p99_us"`
	MaxMicros        float64 `json:"max_us"`
}

func latencyStats(s metrics.Summary, perSec float64) LatencyStats {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return LatencyStats{
		Count:            s.Count,
		ThroughputPerSec: perSec,
		MeanMicros:       us(s.Mean),
		P50Micros:        us(s.P50),
		P99Micros:        us(s.P99),
		MaxMicros:        us(s.Max),
	}
}

// PipelineStats is one pipeline-depth cell.
type PipelineStats struct {
	Depth int `json:"depth"`
	LatencyStats
}

// SnapshotStats is the snapshot-read cell. Latency percentiles are
// measured over batches of BatchSize reads (one clock read per batch:
// per-read timing would cost more than the read itself) and reported
// per read.
type SnapshotStats struct {
	Versions  int `json:"versions"`
	BatchSize int `json:"batch_size"`
	LatencyStats
}

// CommitBenchReport is the serialized BENCH_commit.json payload.
type CommitBenchReport struct {
	Schema   string          `json:"schema"`
	Go       string          `json:"go"`
	CPUs     int             `json:"cpus"`
	Quick    bool            `json:"quick"`
	EndToEnd LatencyStats    `json:"end_to_end_commit"`
	Pipeline []PipelineStats `json:"pipeline"`
	Snapshot SnapshotStats   `json:"snapshot_read"`
	// Recovery is E9: recovery time vs log length and the fsync-policy
	// throughput cost of durability.
	Recovery *RecoveryReport `json:"recovery,omitempty"`
	// Rejoin is E10: live-rejoin time vs missed backlog, per state-
	// transfer mode (schema v3).
	Rejoin *RejoinReport `json:"rejoin,omitempty"`
	// Reconfig is E11: time to replace a dead site / grow the group
	// through an ordered membership change (schema v4).
	Reconfig *ReconfigReport `json:"reconfig,omitempty"`
	// Shard is E12: aggregate durable throughput at 1..S shard groups
	// and the cross-shard transaction cost sweep (schema v5).
	Shard *ShardReport `json:"shard,omitempty"`
	// Chaos is E13: the seeded fault-injection matrix — invariant
	// pass/fail plus recovery time and commit availability per fault
	// class, and the auto-replacement detect/rebuild split (schema v7).
	Chaos *ChaosReport `json:"chaos,omitempty"`
}

// CommitBench runs the tracked commit-path benchmark.
func CommitBench(p CommitBenchParams, quick bool) (CommitBenchReport, error) {
	rep := CommitBenchReport{
		Schema: "otpdb-bench-commit/v7",
		Go:     runtime.Version(),
		CPUs:   runtime.NumCPU(),
		Quick:  quick,
	}

	e2e, err := endToEndCommitCell(p)
	if err != nil {
		return rep, fmt.Errorf("end-to-end: %w", err)
	}
	rep.EndToEnd = e2e

	for _, depth := range p.Depths {
		perSec, lat, _, _, _, err := pipelineCell(PipelineParams{
			Sites: p.Sites, Txns: p.Txns, Depths: p.Depths,
		}, depth)
		if err != nil {
			return rep, fmt.Errorf("pipeline depth %d: %w", depth, err)
		}
		rep.Pipeline = append(rep.Pipeline, PipelineStats{
			Depth:        depth,
			LatencyStats: latencyStats(lat, perSec),
		})
	}

	rep.Snapshot = snapshotReadCell(p)

	rp := DefaultRecoveryParams()
	if quick {
		rp = QuickRecoveryParams()
	}
	rec, err := RecoveryBench(rp)
	if err != nil {
		return rep, fmt.Errorf("recovery: %w", err)
	}
	rep.Recovery = &rec

	jp := DefaultRejoinParams()
	if quick {
		jp = QuickRejoinParams()
	}
	rj, err := RejoinBench(jp)
	if err != nil {
		return rep, fmt.Errorf("rejoin: %w", err)
	}
	rep.Rejoin = &rj

	cp := DefaultReconfigParams()
	if quick {
		cp = QuickReconfigParams()
	}
	rc, err := ReconfigBench(cp)
	if err != nil {
		return rep, fmt.Errorf("reconfig: %w", err)
	}
	rep.Reconfig = &rc

	sp := DefaultShardBenchParams()
	if quick {
		sp = QuickShardBenchParams()
	}
	sh, err := ShardBench(sp)
	if err != nil {
		return rep, fmt.Errorf("shard: %w", err)
	}
	rep.Shard = &sh

	xp := DefaultChaosBenchParams()
	if quick {
		xp = QuickChaosBenchParams()
	}
	ch, err := ChaosBench(xp)
	if err != nil {
		return rep, fmt.Errorf("chaos: %w", err)
	}
	rep.Chaos = &ch
	return rep, nil
}

// endToEndCommitCell measures synchronous full-stack commits: broadcast,
// optimistic execution, consensus confirmation, local commit.
func endToEndCommitCell(p CommitBenchParams) (LatencyStats, error) {
	// The metrics registry stays enabled here, so the tracked E7 numbers
	// carry the instrumentation cost — what a monitored deployment pays
	// (DESIGN.md §12 bounds it against an unregistered run).
	cluster, err := otpdb.NewCluster(otpdb.WithReplicas(p.Sites), otpdb.WithMetrics(metrics.NewRegistry()))
	if err != nil {
		return LatencyStats{}, err
	}
	defer cluster.Stop()
	cluster.MustRegisterUpdate(otpdb.Update{
		Name:  "bump",
		Class: "c",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			v, _ := ctx.Read("k")
			next := otpdb.Int64(otpdb.AsInt64(v) + 1)
			return next, ctx.Write("k", next)
		},
	})
	if err := cluster.Start(); err != nil {
		return LatencyStats{}, err
	}
	sess, err := cluster.Session(0)
	if err != nil {
		return LatencyStats{}, err
	}
	ctx := context.Background()
	hist := metrics.NewHistogram()
	start := time.Now()
	for i := 0; i < p.Txns; i++ {
		res, err := sess.Exec(ctx, "bump")
		if err != nil {
			return LatencyStats{}, err
		}
		hist.Observe(res.Latency)
	}
	elapsed := time.Since(start)
	return latencyStats(hist.Summarize(), float64(p.Txns)/elapsed.Seconds()), nil
}

// snapshotReadCell measures Section 5 snapshot reads against a deep
// version chain, timed in batches.
func snapshotReadCell(p CommitBenchParams) SnapshotStats {
	const batch = 128
	s := storage.NewStore()
	for i := int64(1); i <= int64(p.SnapshotVersions); i++ {
		tx, _ := s.Begin("p", storage.Buffered)
		_ = tx.Write("k", storage.Int64Value(i))
		_ = tx.Commit(i)
	}
	hist := metrics.NewHistogram()
	reads := p.SnapshotReads / batch * batch
	start := time.Now()
	for done := 0; done < reads; done += batch {
		t0 := time.Now()
		for i := 0; i < batch; i++ {
			idx := int64((done+i)%p.SnapshotVersions) + 1
			if _, ok := s.SnapshotRead("p", "k", idx); !ok {
				panic("commitbench: missing version")
			}
		}
		hist.Observe(time.Since(t0) / batch)
	}
	elapsed := time.Since(start)
	return SnapshotStats{
		Versions:  p.SnapshotVersions,
		BatchSize: batch,
		LatencyStats: latencyStats(hist.Summarize(),
			float64(reads)/elapsed.Seconds()),
	}
}

// Table renders the report as the plain-text table otpbench prints.
func (r CommitBenchReport) Table() Table {
	t := Table{
		Title: "E8 — Commit-path benchmark (tracked in BENCH_commit.json)",
		Columns: []string{
			"workload", "n", "txn/s", "mean", "p50", "p99",
		},
		Notes: []string{
			fmt.Sprintf("%s, %d CPU(s); regenerate with: go run ./cmd/otpbench -json commit", r.Go, r.CPUs),
		},
	}
	row := func(name string, s LatencyStats) {
		us := func(f float64) string { return fmt.Sprintf("%.1fµs", f) }
		t.AddRow(name, fmt.Sprintf("%d", s.Count), fmt.Sprintf("%.0f", s.ThroughputPerSec),
			us(s.MeanMicros), us(s.P50Micros), us(s.P99Micros))
	}
	row("end-to-end commit", r.EndToEnd)
	for _, p := range r.Pipeline {
		row(fmt.Sprintf("pipeline depth=%d", p.Depth), p.LatencyStats)
	}
	row(fmt.Sprintf("snapshot read (%d versions)", r.Snapshot.Versions), r.Snapshot.LatencyStats)
	if r.Recovery != nil {
		for _, c := range r.Recovery.FsyncPolicy {
			row("durable commit fsync="+c.Policy, c.LatencyStats)
		}
	}
	if r.Rejoin != nil {
		for _, c := range r.Rejoin.Cells {
			t.AddRow(fmt.Sprintf("rejoin %s missed=%d", c.Mode, c.Missed), fmt.Sprintf("%d", c.Missed),
				fmt.Sprintf("%.0f", c.MissedPerSec), fmt.Sprintf("%.1fms", c.RejoinMillis), "-", "-")
		}
	}
	if r.Reconfig != nil {
		for _, c := range r.Reconfig.Cells {
			t.AddRow(fmt.Sprintf("reconfig %s missed=%d", c.Op, c.Missed), fmt.Sprintf("%d", c.Missed),
				fmt.Sprintf("%.0f", c.MissedPerSec), fmt.Sprintf("%.1fms", c.OpMillis), "-", "-")
		}
	}
	if r.Shard != nil {
		for _, c := range r.Shard.Scale {
			t.AddRow(fmt.Sprintf("shard scale s=%d (%.2fx)", c.Shards, c.SpeedupVs1),
				fmt.Sprintf("%d", c.Count), fmt.Sprintf("%.0f", c.ThroughputPerSec),
				fmt.Sprintf("%.1fµs", c.MeanMicros), fmt.Sprintf("%.1fµs", c.P50Micros),
				fmt.Sprintf("%.1fµs", c.P99Micros))
		}
		for _, c := range r.Shard.Cross {
			t.AddRow(fmt.Sprintf("shard cross=%.0f%% s=%d", c.CrossPercent, c.Shards),
				fmt.Sprintf("%d", c.Count), fmt.Sprintf("%.0f", c.ThroughputPerSec),
				fmt.Sprintf("%.1fµs", c.MeanMicros), fmt.Sprintf("%.1fµs", c.P50Micros),
				fmt.Sprintf("%.1fµs", c.P99Micros))
		}
	}
	if r.Chaos != nil {
		for _, c := range r.Chaos.Scenarios {
			verdict := "pass"
			if !c.Pass {
				verdict = "FAIL"
			}
			t.AddRow(fmt.Sprintf("chaos %s (%s)", c.Scenario, verdict),
				fmt.Sprintf("%d", c.Acked), "-",
				fmt.Sprintf("avail=%.3f", c.Availability), "-", "-")
		}
	}
	return t
}

// JSON serializes the report (indented, trailing newline) for
// BENCH_commit.json.
func (r CommitBenchReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
