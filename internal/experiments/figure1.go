package experiments

import (
	"fmt"
	"time"

	"otpdb/internal/netsim"
)

// Figure1Params configures the Figure 1 reproduction (spontaneous total
// order on a 4-site Ethernet vs inter-send interval).
type Figure1Params struct {
	// Sites is the number of sites (paper: 4).
	Sites int
	// PerSite is the number of messages each site multicasts per point.
	PerSite int
	// Intervals is the swept x axis (paper: 0–5 ms).
	Intervals []time.Duration
	// Seed fixes the simulation randomness.
	Seed int64
}

// DefaultFigure1Params mirrors the paper's setup.
func DefaultFigure1Params() Figure1Params {
	return Figure1Params{
		Sites:     4,
		PerSite:   400,
		Intervals: netsim.DefaultFigure1Intervals(),
		Seed:      1999,
	}
}

// Figure1 reproduces Figure 1: the percentage of spontaneously totally
// ordered messages as a function of the interval between consecutive
// broadcasts at each site.
func Figure1(p Figure1Params) Table {
	if p.Sites == 0 {
		p = DefaultFigure1Params()
	}
	points := netsim.Figure1Curve(p.Sites, p.PerSite, p.Intervals, p.Seed)
	t := Table{
		Title:   "Figure 1 — spontaneous total order vs inter-send interval",
		Columns: []string{"interval", "spontaneously ordered", "messages"},
		Notes: []string{
			fmt.Sprintf("%d sites on a shared 10 Mbit/s Ethernet model, %d msgs/site/point",
				p.Sites, p.PerSite),
			"paper anchors: ~82%% near saturation, ~99%% at 4 ms",
		},
	}
	for _, pt := range points {
		t.AddRow(
			fmt.Sprintf("%v", pt.Interval),
			fmt.Sprintf("%.2f%%", pt.Percent),
			fmt.Sprintf("%d", pt.Messages),
		)
	}
	return t
}
