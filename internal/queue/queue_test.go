package queue

import (
	"sync"
	"testing"
	"time"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int]()
	defer q.Close()
	for i := 0; i < 100; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected", i)
		}
	}
	for i := 0; i < 100; i++ {
		got := <-q.Chan()
		if got != i {
			t.Fatalf("item %d = %d, want %d", i, got, i)
		}
	}
}

func TestPushNeverBlocks(t *testing.T) {
	q := New[int]()
	defer q.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100000; i++ {
			q.Push(i)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("push blocked with no consumer")
	}
}

func TestCloseUnblocksConsumerAndRejectsPush(t *testing.T) {
	q := New[int]()
	got := make(chan bool, 1)
	go func() {
		_, ok := <-q.Chan()
		got <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if ok := <-got; ok {
		t.Fatal("consumer received item from empty closed queue")
	}
	if q.Push(1) {
		t.Fatal("push accepted after close")
	}
}

func TestCloseIsIdempotentAndConcurrent(t *testing.T) {
	q := New[int]()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Close()
		}()
	}
	wg.Wait()
}

func TestConcurrentProducersAllItemsArrive(t *testing.T) {
	q := New[int]()
	defer q.Close()
	const producers, perProducer = 8, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(i)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < producers*perProducer; i++ {
		select {
		case <-q.Chan():
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d items arrived", i, producers*perProducer)
		}
	}
}

func TestLen(t *testing.T) {
	q := New[int]()
	defer q.Close()
	q.Push(1)
	q.Push(2)
	// The pump may have moved up to one item into the channel buffer slot.
	if n := q.Len(); n < 1 || n > 2 {
		t.Fatalf("Len = %d, want 1 or 2", n)
	}
}
