// Package queue provides an unbounded FIFO with channel-based consumption.
//
// Protocol engines must never block on a slow consumer (a blocked engine
// stops acknowledging the network and is indistinguishable from a crashed
// one), so their mailboxes and delivery paths are unbounded queues drained
// by a pump goroutine into an ordinary channel that callers can select on.
package queue

import "sync"

// Q is an unbounded FIFO of T. Construct with New; the zero value is not
// usable. Push never blocks. Consumers receive from Chan in push order.
type Q[T any] struct {
	mu       sync.Mutex
	items    []T
	wake     chan struct{}
	out      chan T
	closed   bool
	closedCh chan struct{}
	done     chan struct{}
}

// New creates a queue and starts its pump goroutine. The caller must Close
// the queue to release the goroutine.
func New[T any]() *Q[T] {
	q := &Q[T]{
		wake:     make(chan struct{}, 1),
		out:      make(chan T),
		closedCh: make(chan struct{}),
		done:     make(chan struct{}),
	}
	go q.pump()
	return q
}

// Push appends v. It reports false when the queue is closed.
func (q *Q[T]) Push(v T) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, v)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return true
}

// Chan returns the consumption channel. It is closed after Close.
func (q *Q[T]) Chan() <-chan T { return q.out }

// Len reports the number of queued (not yet consumed) items.
func (q *Q[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close stops the queue and waits for the pump goroutine to exit. Items
// not yet handed to the consumer are dropped. Close is idempotent.
func (q *Q[T]) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.done
		return
	}
	q.closed = true
	close(q.closedCh)
	q.mu.Unlock()
	<-q.done
}

func (q *Q[T]) pump() {
	defer close(q.done)
	defer close(q.out)
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.mu.Unlock()
			select {
			case <-q.wake:
			case <-q.closedCh:
			}
			q.mu.Lock()
		}
		if q.closed {
			q.mu.Unlock()
			return
		}
		v := q.items[0]
		q.items = q.items[1:]
		q.mu.Unlock()
		select {
		case q.out <- v:
		case <-q.closedCh:
			return
		}
	}
}
