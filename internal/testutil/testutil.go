// Package testutil holds event-wait helpers shared by the repo's
// tests. Its reason to exist is the testpoll analyzer: bare
// sleep-in-a-loop polling is banned from _test.go files, so the
// polling loop lives here — once, in a plain .go file, with the
// deadline and backoff policy owned in one place — and tests say what
// they wait for instead of how long to nap.
package testutil

import (
	"time"
)

// pollInterval is the single backoff knob. 5ms is short enough that a
// condition becoming true adds negligible latency to a test, and long
// enough that a busy-wait under `-race` does not starve the goroutines
// it is waiting on.
const pollInterval = 5 * time.Millisecond

// failer is the slice of testing.TB these helpers need; taking the
// narrow interface keeps the package free of test-only imports in its
// callers' non-test builds.
type failer interface {
	Helper()
	Fatalf(format string, args ...any)
	Logf(format string, args ...any)
}

// Eventually polls cond until it returns true or timeout lapses, then
// fails the test naming what never happened. The final cond result is
// re-checked after the deadline so a condition that becomes true on
// the last beat still passes.
func Eventually(t failer, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	if !eventually(timeout, cond) {
		t.Fatalf("timed out after %v waiting for %s", timeout, what)
	}
}

// EventuallyOr is Eventually with a diagnostic callback: on timeout,
// dump runs first (log the epochs, the queue depths, whatever explains
// the hang) and then the test fails.
func EventuallyOr(t failer, timeout time.Duration, what string, cond func() bool, dump func()) {
	t.Helper()
	if !eventually(timeout, cond) {
		dump()
		t.Fatalf("timed out after %v waiting for %s", timeout, what)
	}
}

// Consistently is Eventually's dual: it asserts cond holds at every
// poll for the whole window — for negative properties ("no false
// suspicion while everyone heartbeats"). check runs once per beat and
// fails the test itself on violation, so the failure carries the
// caller's own diagnostics.
func Consistently(t failer, window time.Duration, check func()) {
	t.Helper()
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		check()
		time.Sleep(pollInterval)
	}
	check()
}

// Await polls cond until it holds or timeout lapses and reports the
// final result without failing the test — for waits where a timeout is
// survivable (the test asserts and reports on its own terms later).
func Await(timeout time.Duration, cond func() bool) bool {
	return eventually(timeout, cond)
}

// eventually is the one sanctioned poll loop.
func eventually(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		time.Sleep(pollInterval)
	}
}
