package otpdb_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"otpdb"
	"otpdb/internal/testutil"
)

// newShardedCluster builds a started 2-shard cluster with classes
// "alpha" pinned to shard 0 and "beta" to shard 1, plus the procedures
// the sharding tests share.
func newShardedCluster(t *testing.T, opts ...otpdb.Option) *otpdb.Cluster {
	t.Helper()
	return newShardedClusterWith(t, nil, opts...)
}

// newShardedClusterWith additionally invokes register before Start, for
// tests that need extra procedures.
func newShardedClusterWith(t *testing.T, register func(*otpdb.Cluster), opts ...otpdb.Option) *otpdb.Cluster {
	t.Helper()
	all := append([]otpdb.Option{
		otpdb.WithReplicas(3),
		otpdb.WithShards(2),
		otpdb.WithCrossShardTimeouts(500*time.Millisecond, 900*time.Millisecond),
	}, opts...)
	c, err := otpdb.NewCluster(all...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PinClass("alpha", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.PinClass("beta", 1); err != nil {
		t.Fatal(err)
	}
	c.MustRegisterUpdate(otpdb.Update{
		Name:  "inc-alpha",
		Class: "alpha",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			v, _ := ctx.Read("n")
			next := otpdb.Int64(otpdb.AsInt64(v) + 1)
			return next, ctx.Write("n", next)
		},
	})
	c.MustRegisterUpdate(otpdb.Update{
		Name:  "inc-beta",
		Class: "beta",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			v, _ := ctx.Read("n")
			next := otpdb.Int64(otpdb.AsInt64(v) + 1)
			return next, ctx.Write("n", next)
		},
	})
	// transfer moves amt from alpha/bal to beta/bal — the canonical
	// cross-shard transaction.
	c.MustRegisterMultiUpdate(otpdb.MultiUpdate{
		Name:    "transfer",
		Classes: []otpdb.Class{"alpha", "beta"},
		Fn: func(ctx otpdb.MultiUpdateCtx) (otpdb.Value, error) {
			amt := otpdb.AsInt64(ctx.Args()[0])
			src, _ := ctx.Read("alpha", "bal")
			dst, _ := ctx.Read("beta", "bal")
			if otpdb.AsInt64(src) < amt {
				return nil, fmt.Errorf("insufficient funds")
			}
			if err := ctx.Write("alpha", "bal", otpdb.Int64(otpdb.AsInt64(src)-amt)); err != nil {
				return nil, err
			}
			if err := ctx.Write("beta", "bal", otpdb.Int64(otpdb.AsInt64(dst)+amt)); err != nil {
				return nil, err
			}
			return otpdb.Int64(otpdb.AsInt64(src) - amt), nil
		},
	})
	if err := c.Seed("alpha", "bal", otpdb.Int64(100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Seed("beta", "bal", otpdb.Int64(0)); err != nil {
		t.Fatal(err)
	}
	if register != nil {
		register(c)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// waitUntil waits until cond holds or the deadline lapses.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	testutil.Eventually(t, d, what, cond)
}

// readInt64 reads a committed value at a site, failing the test on error.
func readInt64(t *testing.T, c *otpdb.Cluster, site int, class otpdb.Class, key otpdb.Key) (int64, bool) {
	t.Helper()
	v, ok, err := c.Read(site, class, key)
	if err != nil {
		t.Fatal(err)
	}
	return otpdb.AsInt64(v), ok
}

func TestShardRoutingSingleShard(t *testing.T) {
	c := newShardedCluster(t)
	if c.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", c.Shards())
	}
	if c.ShardOf("alpha") != 0 || c.ShardOf("beta") != 1 {
		t.Fatalf("pins not honoured: alpha on %d, beta on %d", c.ShardOf("alpha"), c.ShardOf("beta"))
	}
	sess, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ra, err := sess.Exec(ctx, "inc-alpha")
	if err != nil {
		t.Fatal(err)
	}
	if ra.Shard != 0 {
		t.Fatalf("inc-alpha ordered by shard %d, want 0", ra.Shard)
	}
	rb, err := sess.Exec(ctx, "inc-beta")
	if err != nil {
		t.Fatal(err)
	}
	if rb.Shard != 1 {
		t.Fatalf("inc-beta ordered by shard %d, want 1", rb.Shard)
	}
	// The two shards order independently: both transactions start their
	// group's definitive order at index 1.
	if ra.TOIndex != 1 || rb.TOIndex != 1 {
		t.Fatalf("TO indexes %d/%d, want 1/1 (independent orders)", ra.TOIndex, rb.TOIndex)
	}
	for site := 0; site < 3; site++ {
		site := site
		waitUntil(t, 5*time.Second, fmt.Sprintf("site %d to apply both shards", site), func() bool {
			a, _ := readInt64(t, c, site, "alpha", "n")
			b, _ := readInt64(t, c, site, "beta", "n")
			return a == 1 && b == 1
		})
	}
}

func TestCrossShardCommit(t *testing.T) {
	c := newShardedCluster(t)
	sess, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(context.Background(), "transfer", otpdb.Int64(30))
	if err != nil {
		t.Fatal(err)
	}
	if got := otpdb.AsInt64(res.Value); got != 70 {
		t.Fatalf("transfer returned %d, want 70", got)
	}
	if res.Shard != 0 {
		t.Fatalf("home shard %d, want 0 (min touched)", res.Shard)
	}
	if len(res.ShardTO) != 2 || res.ShardTO[0].Shard != 0 || res.ShardTO[1].Shard != 1 {
		t.Fatalf("ShardTO %+v, want positions in shards 0 and 1", res.ShardTO)
	}
	if res.TOIndex != res.ShardTO[0].TOIndex {
		t.Fatalf("TOIndex %d != home position %d", res.TOIndex, res.ShardTO[0].TOIndex)
	}
	for site := 0; site < 3; site++ {
		site := site
		waitUntil(t, 5*time.Second, fmt.Sprintf("site %d to apply the transfer in both shards", site), func() bool {
			a, _ := readInt64(t, c, site, "alpha", "bal")
			b, _ := readInt64(t, c, site, "beta", "bal")
			return a == 70 && b == 30
		})
	}
	waitUntil(t, 5*time.Second, "convergence", func() bool {
		ok, err := c.Converged()
		return err == nil && ok
	})
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardAbortPropagation forces shard 1 to vote NO (its phase-0
// read is invalidated by a conflicting single-shard commit) and verifies
// the abort reaches shard 0 too: the YES-voting shard applies nothing
// from the aborted attempt.
func TestCrossShardAbortPropagation(t *testing.T) {
	ctx := context.Background()
	var sess *otpdb.Session
	var bumped atomic.Bool
	// mirror reads beta/n and writes an alpha key NAMED after the value
	// read, so each attempt's shard-0 write is distinguishable. On the
	// first attempt only, it commits a conflicting single-shard update to
	// beta AFTER capturing the read — guaranteeing stale validation.
	// (Phase 0 runs only in the coordinating process, so the side effect
	// is safe; sess is assigned before any submission.)
	c := newShardedClusterWith(t, func(c *otpdb.Cluster) {
		c.MustRegisterMultiUpdate(otpdb.MultiUpdate{
			Name:    "mirror",
			Classes: []otpdb.Class{"alpha", "beta"},
			Fn: func(mctx otpdb.MultiUpdateCtx) (otpdb.Value, error) {
				vb, _ := mctx.Read("beta", "n")
				n := otpdb.AsInt64(vb)
				if bumped.CompareAndSwap(false, true) {
					if _, err := sess.Exec(ctx, "inc-beta"); err != nil {
						return nil, err
					}
				}
				key := otpdb.Key(fmt.Sprintf("mark-%d", n))
				if err := mctx.Write("alpha", key, otpdb.Int64(n)); err != nil {
					return nil, err
				}
				if err := mctx.Write("beta", "mirrored", otpdb.Int64(n)); err != nil {
					return nil, err
				}
				return otpdb.Int64(n), nil
			},
		})
	})
	sess, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(ctx, "mirror")
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != otpdb.Retried {
		t.Fatalf("outcome %v, want retried (first attempt must abort)", res.Outcome)
	}
	if got := otpdb.AsInt64(res.Value); got != 1 {
		t.Fatalf("committed attempt read beta/n = %d, want 1 (post-bump)", got)
	}
	for site := 0; site < 3; site++ {
		site := site
		waitUntil(t, 5*time.Second, fmt.Sprintf("site %d to apply the retried attempt", site), func() bool {
			_, ok := readInt64(t, c, site, "alpha", "mark-1")
			return ok
		})
		// The aborted attempt's shard-0 write must not exist anywhere,
		// even though shard 0 voted YES on it.
		if _, ok := readInt64(t, c, site, "alpha", "mark-0"); ok {
			t.Fatalf("site %d: aborted attempt's write alpha/mark-0 was applied", site)
		}
		if v, _ := readInt64(t, c, site, "beta", "mirrored"); v != 1 {
			t.Fatalf("site %d: beta/mirrored = %d, want 1", site, v)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardCoordinatorCrashBeforeDecide crashes the coordinator at
// the classic 2PC in-doubt point (votes collected, decision unsent). The
// resolver must presume abort: no shard applies any write, and the
// touched classes un-wedge for later transactions.
func TestCrossShardCoordinatorCrashBeforeDecide(t *testing.T) {
	c := newShardedCluster(t)
	sess, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var crashed atomic.Bool
	c.SetCrashBeforeDecide(func() bool { return crashed.CompareAndSwap(false, true) })
	if _, err := sess.Exec(ctx, "transfer", otpdb.Int64(30)); err == nil {
		t.Fatal("crashed coordinator reported success")
	}
	// The resolver (resolve-after 900ms) aborts the orphaned prepares;
	// afterwards a fresh transaction on the same classes must commit,
	// proving the class queues were released.
	res, err := sess.Exec(ctx, "transfer", otpdb.Int64(10))
	if err != nil {
		t.Fatalf("transfer after resolved abort: %v", err)
	}
	if got := otpdb.AsInt64(res.Value); got != 90 {
		t.Fatalf("balance after crash + one transfer = %d, want 90 (crashed attempt must not debit)", got)
	}
	for site := 0; site < 3; site++ {
		site := site
		waitUntil(t, 5*time.Second, fmt.Sprintf("site %d consistency", site), func() bool {
			a, _ := readInt64(t, c, site, "alpha", "bal")
			b, _ := readInt64(t, c, site, "beta", "bal")
			return a == 90 && b == 10
		})
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardCoordinatorCrashAfterHomeDecide crashes the coordinator
// right after the decision record commits at the home shard. The
// decision is durable truth: every shard must still apply the writes —
// never commit in one shard while aborting in another.
func TestCrossShardCoordinatorCrashAfterHomeDecide(t *testing.T) {
	c := newShardedCluster(t)
	sess, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	var crashed atomic.Bool
	c.SetCrashAfterHomeDecide(func() bool { return crashed.CompareAndSwap(false, true) })
	if _, err := sess.Exec(context.Background(), "transfer", otpdb.Int64(30)); err == nil {
		t.Fatal("crashed coordinator reported success")
	}
	// The commit decision was recorded before the crash, so the transfer
	// must land in BOTH shards at every site.
	for site := 0; site < 3; site++ {
		site := site
		waitUntil(t, 5*time.Second, fmt.Sprintf("site %d to apply the decided transfer", site), func() bool {
			a, _ := readInt64(t, c, site, "alpha", "bal")
			b, _ := readInt64(t, c, site, "beta", "bal")
			return a == 70 && b == 30
		})
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestShardDigestConvergenceUnderJitter mixes single- and cross-shard
// traffic over a jittery network and verifies every shard's replicas
// converge to identical digests.
func TestShardDigestConvergenceUnderJitter(t *testing.T) {
	c := newShardedCluster(t, otpdb.WithNetworkJitter(1500*time.Microsecond))
	sess, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var handles []*otpdb.Handle
	for i := 0; i < 30; i++ {
		ha, err := sess.SubmitAsync("inc-alpha")
		if err != nil {
			t.Fatal(err)
		}
		hb, err := sess.SubmitAsync("inc-beta")
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, ha, hb)
		if i%10 == 0 {
			hx, err := sess.SubmitAsync("transfer", otpdb.Int64(1))
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, hx)
		}
	}
	for _, h := range handles {
		if _, err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 10*time.Second, "digest convergence", func() bool {
		ok, err := c.Converged()
		return err == nil && ok
	})
	for g := 0; g < 2; g++ {
		d0, err := c.ShardDigest(0, g)
		if err != nil {
			t.Fatal(err)
		}
		for site := 1; site < 3; site++ {
			d, err := c.ShardDigest(site, g)
			if err != nil {
				t.Fatal(err)
			}
			if d != d0 {
				t.Fatalf("shard %d digest diverges at site %d", g, site)
			}
		}
	}
	a, _ := readInt64(t, c, 0, "alpha", "n")
	b, _ := readInt64(t, c, 0, "beta", "n")
	if a != 30 || b != 30 {
		t.Fatalf("counters %d/%d, want 30/30", a, b)
	}
	bal, _ := readInt64(t, c, 0, "alpha", "bal")
	if bal != 97 {
		t.Fatalf("alpha/bal = %d, want 97 after 3 unit transfers", bal)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiShardQuery runs a read-only procedure spanning both shards:
// one pinned snapshot per shard, consistent within each.
func TestMultiShardQuery(t *testing.T) {
	c, err := otpdb.NewCluster(
		otpdb.WithReplicas(3),
		otpdb.WithShards(2),
		otpdb.WithCrossShardTimeouts(500*time.Millisecond, 900*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PinClass("alpha", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.PinClass("beta", 1); err != nil {
		t.Fatal(err)
	}
	c.MustRegisterUpdate(otpdb.Update{
		Name:  "set-alpha",
		Class: "alpha",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			return nil, ctx.Write("k", ctx.Args()[0])
		},
	})
	c.MustRegisterUpdate(otpdb.Update{
		Name:  "set-beta",
		Class: "beta",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			return nil, ctx.Write("k", ctx.Args()[0])
		},
	})
	c.MustRegisterQuery(otpdb.Query{
		Name: "sum",
		Fn: func(ctx otpdb.QueryCtx) (otpdb.Value, error) {
			a, _ := ctx.Read("alpha", "k")
			b, _ := ctx.Read("beta", "k")
			return otpdb.Int64(otpdb.AsInt64(a) + otpdb.AsInt64(b)), nil
		},
	})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	sess, err := c.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Exec(ctx, "set-alpha", otpdb.Int64(40)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "set-beta", otpdb.Int64(2)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "site 1 to apply both writes", func() bool {
		a, _ := readInt64(t, c, 1, "alpha", "k")
		b, _ := readInt64(t, c, 1, "beta", "k")
		return a == 40 && b == 2
	})
	v, err := sess.Query(ctx, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if got := otpdb.AsInt64(v); got != 42 {
		t.Fatalf("sum = %d, want 42", got)
	}
}

// TestCrossShardSingleShardFallthrough: a multi-class procedure whose
// classes co-locate on one shard takes the ordinary single-group path.
func TestCrossShardSingleShardFallthrough(t *testing.T) {
	c := newShardedClusterWith(t, func(c *otpdb.Cluster) {
		c.MustRegisterMultiUpdate(otpdb.MultiUpdate{
			Name:    "both-alpha",
			Classes: []otpdb.Class{"alpha"},
			Fn: func(ctx otpdb.MultiUpdateCtx) (otpdb.Value, error) {
				v, _ := ctx.Read("alpha", "bal")
				return v, nil
			},
		})
	})
	sess, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(context.Background(), "transfer", otpdb.Int64(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shard != 0 || len(res.ShardTO) != 2 {
		t.Fatalf("transfer should be cross-shard: %+v", res)
	}
	res2, err := sess.Exec(context.Background(), "both-alpha")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Shard != 0 || res2.ShardTO != nil {
		t.Fatalf("single-shard multi-update took the cross path: %+v", res2)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("unexpected deadline")
	}
}
