// Package otpdb is a replicated in-memory database that processes
// transactions over an atomic broadcast with optimistic delivery,
// reproducing Kemme, Pedone, Alonso and Schiper, "Processing Transactions
// over Optimistic Atomic Broadcast Protocols" (ICDCS 1999).
//
// A Cluster runs n database replicas in one process, connected by an
// in-memory network. Update transactions are stored procedures bound to a
// conflict class; they are TO-broadcast, optimistically executed in
// tentative delivery order at every site, and committed once the
// definitive total order confirms the tentative one (transactions are
// undone and redone when it does not). Read-only queries execute locally
// against consistent multi-version snapshots and never block updates.
//
// Clients talk to the cluster through a Session bound to one site.
// Session.Exec returns a typed Result — the procedure's return value, the
// definitive total-order index, the commit latency, and an Outcome
// reporting whether the transaction took the optimistic fast path or was
// reordered/retried by the Correctness Check. Session.SubmitAsync returns
// a Handle future so many transactions can be pipelined per client, which
// is where optimistic atomic broadcast earns its throughput:
//
//	cluster, err := otpdb.NewCluster(otpdb.WithReplicas(3))
//	...
//	cluster.MustRegisterUpdate(otpdb.Update{
//	    Name:  "credit",
//	    Class: "accounts",
//	    Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
//	        v, _ := ctx.Read("balance")
//	        next := otpdb.Int64(otpdb.AsInt64(v) + 10)
//	        return next, ctx.Write("balance", next)
//	    },
//	})
//	if err := cluster.Start(); err != nil { ... }
//	defer cluster.Stop()
//
//	sess, _ := cluster.Session(0)
//	res, err := sess.Exec(context.Background(), "credit")
//	// res.Value is the new balance; res.Outcome is otpdb.FastPath when
//	// the tentative order held.
//
//	// Pipelined submission: keep many transactions in flight.
//	var handles []*otpdb.Handle
//	for i := 0; i < 100; i++ {
//	    h, _ := sess.SubmitAsync("credit")
//	    handles = append(handles, h)
//	}
//	for _, h := range handles {
//	    res, _ := h.Result() // resolves at local commit
//	    _ = res.TOIndex
//	}
//
// # Horizontal sharding
//
// WithShards(s) partitions the conflict-class namespace across s
// independent OTP groups, each with its own broadcast, scheduler and
// durability stack; every site hosts one replica of every shard. Classes
// map to shards by consistent hashing (PinClass overrides). Sessions
// route transparently: a transaction whose classes live in one shard
// runs the paper's protocol unchanged inside that shard's group, and a
// transaction spanning shards is ordered definitively in every touched
// shard by an optimistic two-phase protocol (internal/shard) that
// commits everywhere or nowhere. Queries combine one consistent snapshot
// per touched shard.
//
// Multi-process deployments over TCP are provided by cmd/otpd; the
// experiment harness reproducing the paper's figures by cmd/otpbench.
package otpdb

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/consensus"
	"otpdb/internal/db"
	"otpdb/internal/events"
	"otpdb/internal/fd"
	"otpdb/internal/history"
	"otpdb/internal/member"
	"otpdb/internal/metrics"
	"otpdb/internal/otp"
	"otpdb/internal/recovery"
	"otpdb/internal/shard"
	"otpdb/internal/sproc"
	"otpdb/internal/statex"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
	"otpdb/internal/wal"
)

// Re-exported data types. Values are immutable byte strings; helpers
// below convert to and from Go types.
type (
	// Value is a database value: an immutable byte string. Values passed
	// INTO the database (procedure arguments, Write) are copied at the
	// storage boundary, so callers may reuse their buffers. Values
	// handed OUT (Read, Query results, procedure reads) alias the
	// committed version and MUST NOT be modified — mutating one corrupts
	// the store's version history in place. Build a new Value (e.g. via
	// Int64/String or append to a nil slice) instead of editing in
	// place.
	Value = storage.Value
	// Key identifies an object within a conflict class.
	Key = storage.Key
	// Class names a conflict class (Section 2.3 of the paper): the unit
	// of conflict detection and of storage partitioning.
	Class = sproc.ClassID
	// UpdateCtx is the data access interface of update procedures.
	UpdateCtx = sproc.UpdateCtx
	// QueryCtx is the data access interface of read-only queries.
	QueryCtx = sproc.QueryCtx
	// Update declares an update stored procedure.
	Update = sproc.Update
	// MultiUpdate declares an update procedure spanning several conflict
	// classes — the finer-granularity model of the paper's companion
	// report [13] (Sections 2.3 and 6).
	MultiUpdate = sproc.MultiUpdate
	// MultiUpdateCtx is the data access interface of multi-class updates.
	MultiUpdateCtx = sproc.MultiUpdateCtx
	// Query declares a read-only stored procedure.
	Query = sproc.Query
)

// Int64 encodes an int64 as a Value.
func Int64(n int64) Value { return storage.Int64Value(n) }

// AsInt64 decodes a Value produced by Int64 (missing values decode to 0).
func AsInt64(v Value) int64 { return storage.ValueInt64(v) }

// String encodes a string as a Value.
func String(s string) Value { return storage.StringValue(s) }

// AsString decodes a Value as a string.
func AsString(v Value) string { return storage.ValueString(v) }

// Ordering selects the atomic broadcast engine.
type Ordering int

// Ordering engines.
const (
	// OptimisticOrdering is the paper's OPT-ABcast: tentative delivery on
	// reception, definitive order via consensus stages. The default.
	OptimisticOrdering Ordering = iota + 1
	// ConservativeOrdering is the classic fixed-sequencer baseline:
	// execution starts only when the definitive order is known.
	ConservativeOrdering
)

// SyncPolicy selects when write-ahead log appends reach stable storage
// (see WithDurability).
type SyncPolicy = wal.SyncPolicy

// Sync policies.
const (
	// SyncEveryCommit fsyncs before a commit is acknowledged: durable
	// against machine crashes, at per-commit fsync cost.
	SyncEveryCommit = wal.SyncEveryCommit
	// SyncGrouped fsyncs on a short background timer: a bounded window
	// of acknowledged commits may be lost on machine crash, none on
	// process crash. The default.
	SyncGrouped = wal.SyncGrouped
	// SyncNever leaves flushing to the operating system.
	SyncNever = wal.SyncNever
)

// config collects the cluster options.
type config struct {
	replicas     int
	shards       int
	netDelay     time.Duration
	netJitter    time.Duration
	seed         int64
	ordering     Ordering
	writeMode    storage.Mode
	queryMode    db.QueryMode
	roundTimeout time.Duration
	recordHist   bool
	pruneEvery   int
	durDir       string
	syncPolicy   SyncPolicy
	ckptEvery    int
	defLogCap    int
	voteTimeout  time.Duration
	resolveAfter time.Duration
	commitDelay  time.Duration
	autoReplace  bool
	suspectWin   time.Duration
	metrics      *metrics.Registry
	trace        *metrics.TraceRing
	events       *events.Recorder
}

// Option configures NewCluster.
type Option func(*config)

// WithReplicas sets the number of replicas per shard (default 3).
func WithReplicas(n int) Option { return func(c *config) { c.replicas = n } }

// WithShards partitions the conflict classes across n independent OTP
// groups (default 1 — the paper's single-group protocol). Every site
// hosts one replica of every shard; single-shard transactions never
// cross groups, and cross-shard transactions are two-phase ordered (see
// the package comment).
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithNetworkDelay adds a fixed delivery delay between replicas.
func WithNetworkDelay(d time.Duration) Option { return func(c *config) { c.netDelay = d } }

// WithNetworkJitter adds a random delivery delay in [0, d), which causes
// tentative/definitive order mismatches — useful for exercising the
// abort/reorder path.
func WithNetworkJitter(d time.Duration) Option { return func(c *config) { c.netJitter = d } }

// WithSeed seeds the network randomness (default 1).
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithOrdering selects the broadcast engine (default OptimisticOrdering).
func WithOrdering(o Ordering) Option { return func(c *config) { c.ordering = o } }

// WithInPlaceWrites switches the storage engine to in-place writes with
// undo logs (the paper's "traditional recovery techniques") instead of
// buffered writes.
func WithInPlaceWrites() Option {
	return func(c *config) { c.writeMode = storage.InPlaceUndo }
}

// WithDirtyQueries disables the Section 5 snapshot rule — queries read
// the latest committed values with no index discipline. Provided only to
// demonstrate the anomaly the snapshot rule prevents.
func WithDirtyQueries() Option {
	return func(c *config) { c.queryMode = db.DirtyQueries }
}

// WithHistoryRecording enables recording of commits and query reads so
// CheckHistory can verify 1-copy-serializability after a run.
func WithHistoryRecording() Option { return func(c *config) { c.recordHist = true } }

// WithConsensusRoundTimeout tunes the consensus coordinator timeout
// (default 100 ms; lower values recover faster from crashed coordinators
// at the cost of spurious rounds).
func WithConsensusRoundTimeout(d time.Duration) Option {
	return func(c *config) { c.roundTimeout = d }
}

// WithPruneInterval sets how many local commits pass between version
// prune passes (default 1024). Each pass advances the storage watermark
// to the oldest active query snapshot and discards versions below it,
// bounding version-chain growth under sustained update load. Negative
// disables pruning (version chains grow without bound, as in the
// paper's model).
func WithPruneInterval(n int) Option {
	return func(c *config) { c.pruneEvery = n }
}

// WithDurability makes every replica durable under dir (one
// subdirectory per site, or per shard and site with WithShards):
// definitive commits are written ahead to a segmented, CRC-framed log
// and periodic checkpoints bound replay. On Start each replica recovers
// its committed state from its directory and resumes at the recovered
// definitive index — the "traditional recovery techniques" the paper
// assumes each site has (Section 3.2).
//
// Restarting a whole multi-site cluster from durable state requires
// every site to have recovered the same index (stop the cluster
// cleanly); a single crashed site instead rejoins a running cluster
// with RestartSite, which transfers a peer checkpoint and the missed
// definitive deliveries regardless of local state.
func WithDurability(dir string) Option {
	return func(c *config) { c.durDir = dir }
}

// WithSyncPolicy selects the WAL fsync policy (default SyncGrouped).
func WithSyncPolicy(p SyncPolicy) Option {
	return func(c *config) { c.syncPolicy = p }
}

// WithCheckpointEvery sets how many local commits pass between durable
// checkpoints (default 4096; negative disables periodic checkpoints, so
// recovery replays the whole log).
func WithCheckpointEvery(n int) Option {
	return func(c *config) { c.ckptEvery = n }
}

// WithDefLogCap bounds each broadcast engine's retained definitive
// history (default 64Ki entries). A rejoining site whose gap reaches
// below the retained window falls back from a tail-only state transfer
// to a full checkpoint + tail; shrinking the cap forces that fallback in
// tests and benchmarks.
func WithDefLogCap(n int) Option {
	return func(c *config) { c.defLogCap = n }
}

// WithCommitFlushDelay models a serial commit-flush device in every
// replica's definitive delivery path: each TO confirmation dwells d
// before it is processed, the way a per-commit WAL fsync serializes a
// group's commit pipeline. Like WithNetworkDelay for the transport, this
// gives benchmarks a deterministic device model — shard-scaling cells
// use it instead of the host filesystem, whose shared journal serializes
// concurrent fsyncs across groups.
func WithCommitFlushDelay(d time.Duration) Option {
	return func(c *config) { c.commitDelay = d }
}

// WithAutoReplace closes the self-healing loop: every live site runs a
// heartbeat failure detector (internal/fd), and when a site has been
// continuously suspected for the given window, survivors automatically
// propose the ReplaceSite configuration change and rebuild the identity
// as a fresh replica — a crashed site heals with no operator action.
//
// The race between survivors is resolved by the membership protocol
// itself: each proposer derives its change from the configuration it
// captured when the window expired, so exactly one proposal commits per
// epoch and every loser observes member.ErrEpochConflict and backs off
// for a full further window. Replacement only fires for sites downed at
// the transport level (CrashSite); a partitioned-but-alive site is
// suspected but never replaced — heal the partition instead.
//
// window <= 0 selects the 500 ms default. Requires OptimisticOrdering.
func WithAutoReplace(window time.Duration) Option {
	return func(c *config) {
		c.autoReplace = true
		c.suspectWin = window
	}
}

// WithMetrics attaches a runtime metrics registry: every layer of every
// site stack — broadcast engine, consensus, scheduler, WAL, failure
// detector, state transfer, cross-shard coordinator — registers its
// telemetry there, labelled by shard and site. Snapshot the registry
// directly, or serve it as a Prometheus scrape surface with
// metrics.WriteProm. Instruments are lock-free atomics with fixed-bucket
// histograms; the registry adds no allocation to the hot path.
func WithMetrics(r *metrics.Registry) Option {
	return func(c *config) { c.metrics = r }
}

// WithTraceRing attaches a per-transaction trace ring: every replica
// records submit/opt-deliver/to-deliver/commit/abort span events for the
// transactions it processes, tagged with site and shard. The ring is
// fixed-size and lock-cheap; inspect it with TraceRing.Find(txnid).
func WithTraceRing(t *metrics.TraceRing) Option {
	return func(c *config) { c.trace = t }
}

// WithEvents attaches a flight recorder: the rare, causally significant
// transitions — epoch changes, failure-detector suspicions and clears,
// auto-replacement rounds, state-transfer negotiations — are appended to
// its bounded ring as structured events. Dump it after an incident
// (events.Recorder.DumpJSON) or stream it live (Watch); the chaos
// harness dumps it automatically when an invariant trips.
func WithEvents(rec *events.Recorder) Option {
	return func(c *config) { c.events = rec }
}

// WithCrossShardTimeouts tunes the cross-shard protocol: vote bounds a
// coordinator's wait for every shard's prepare vote before it proposes
// abort, and resolve is how long an orphaned prepare may block before
// the resolver presumes its coordinator dead (resolve must exceed vote).
// Defaults: 3s and 5s.
func WithCrossShardTimeouts(vote, resolve time.Duration) Option {
	return func(c *config) {
		c.voteTimeout = vote
		c.resolveAfter = resolve
	}
}

// group is one shard's replica group: its own in-memory network, OPT-
// ABcast engines, schedulers, membership trackers and durability state —
// structurally a pre-sharding Cluster. Site i of every group lives in
// the same failure domain (CrashSite downs site i of all groups).
type group struct {
	hub       *transport.Hub
	recorder  *history.Recorder
	replicas  []*db.Replica
	engines   []*abcast.Optimistic // per-site OPT-ABcast engine; nil under ConservativeOrdering
	trackers  []*member.Tracker    // per-site membership view
	stops     []func()
	bases     []int64 // recovered definitive index per site (durability)
	joinModes map[int]statex.Mode
}

// seedEntry is a deferred store seed, tagged with the class it loads so
// Start can route it to the owning shard ("" seeds every shard).
type seedEntry struct {
	class Class
	fn    func(*storage.Store)
}

// Cluster is an in-process set of replicated shard groups (one group in
// the default single-shard configuration).
type Cluster struct {
	cfg      config
	registry *sproc.Registry
	smap     *shard.Map
	shub     *shard.Hub
	coord    *shard.Coordinator
	seeds    []seedEntry

	// mu guards the per-site state below: RestartSite swaps a site's
	// whole stack while sessions and cluster methods resolve replicas
	// through it.
	mu       sync.RWMutex
	groups   []*group
	sessions []*Session
	crashed  map[int]bool
	removed  map[int]bool // sites voted out of the group
	started  bool
	stopped  bool

	// replMu guards the auto-replacement audit trail (its writers hold
	// c.mu in mixed modes, so it needs its own lock).
	replMu sync.Mutex
	repls  []Replacement
}

// Replacement is one auto-replacement's timeline, recorded by the
// survivor that won the round (see WithAutoReplace). The phases separate
// detection cost (SuspectedAt→DetectedAt: the sustained-suspicion
// hysteresis window) from repair cost (DetectedAt→CommittedAt: the
// membership rounds; CommittedAt→RebuiltAt: the state transfer).
type Replacement struct {
	// Victim is the replaced site's index.
	Victim int
	// SuspectedAt is when the winner's detector first suspected the
	// victim in the unbroken stretch that expired the window.
	SuspectedAt time.Time
	// DetectedAt is when the suspicion window expired and the winner
	// began proposing the replacement.
	DetectedAt time.Time
	// CommittedAt is when every shard group had committed the
	// ReplaceSite configuration change.
	CommittedAt time.Time
	// RebuiltAt is when the replacement replica finished its state
	// transfer and rejoined; zero if the rebuild failed (the next
	// window retries and appends its own record).
	RebuiltAt time.Time
}

// Replacements returns the auto-replacement rounds won by this process,
// oldest first (a copy; safe to retain).
func (c *Cluster) Replacements() []Replacement {
	c.replMu.Lock()
	defer c.replMu.Unlock()
	out := make([]Replacement, len(c.repls))
	copy(out, c.repls)
	return out
}

// siteScope labels one site's metric series within one shard group; with
// no registry configured it returns the nil (inert) scope.
func (c *Cluster) siteScope(g, i int) *metrics.Scope {
	return c.cfg.metrics.Scope("shard", strconv.Itoa(g), "site", strconv.Itoa(i))
}

// Errors returned by the cluster.
var (
	// ErrStarted is returned by configuration methods after Start.
	ErrStarted = errors.New("otpdb: cluster already started")
	// ErrNotStarted is returned by data methods before Start.
	ErrNotStarted = errors.New("otpdb: cluster not started")
	// ErrBadSite is returned for an out-of-range site index.
	ErrBadSite = errors.New("otpdb: no such site")
	// ErrBadShard is returned for an out-of-range shard index.
	ErrBadShard = errors.New("otpdb: no such shard")
)

// Open creates an unstarted single-replica durable database rooted at
// dir — the embedded, store-like entry point. Register procedures, then
// Start: the replica replays its checkpoint and write-ahead log tail
// and resumes at the recovered commit index (RecoveredIndex(0) reports
// it). Stop flushes the log; a killed process recovers on the next
// Open/Start.
//
//	db, _ := otpdb.Open(dir)
//	db.MustRegisterUpdate(...)
//	_ = db.Start()
//	defer db.Stop()
func Open(dir string, opts ...Option) (*Cluster, error) {
	all := append([]Option{WithReplicas(1), WithDurability(dir)}, opts...)
	return NewCluster(all...)
}

// NewCluster creates an unstarted cluster.
func NewCluster(opts ...Option) (*Cluster, error) {
	cfg := config{
		replicas:     3,
		shards:       1,
		seed:         1,
		ordering:     OptimisticOrdering,
		writeMode:    storage.Buffered,
		queryMode:    db.SnapshotQueries,
		roundTimeout: 100 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.replicas <= 0 {
		return nil, fmt.Errorf("otpdb: replicas must be positive, got %d", cfg.replicas)
	}
	if cfg.shards <= 0 {
		return nil, fmt.Errorf("otpdb: shards must be positive, got %d", cfg.shards)
	}
	if cfg.autoReplace {
		if cfg.ordering != OptimisticOrdering {
			return nil, errors.New("otpdb: WithAutoReplace requires OptimisticOrdering")
		}
		if cfg.suspectWin <= 0 {
			cfg.suspectWin = 500 * time.Millisecond
		}
	}
	m, err := shard.NewMap(cfg.shards)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, registry: sproc.NewRegistry(), smap: m}
	return c, nil
}

// RegisterUpdate adds an update stored procedure. Must be called before
// Start; procedures must be deterministic (they re-execute at every
// replica).
func (c *Cluster) RegisterUpdate(u Update) error {
	if c.started {
		return ErrStarted
	}
	return c.registry.RegisterUpdate(u)
}

// MustRegisterUpdate is RegisterUpdate that panics on error, for
// program-initialization use.
func (c *Cluster) MustRegisterUpdate(u Update) {
	if err := c.RegisterUpdate(u); err != nil {
		panic(err)
	}
}

// RegisterMultiUpdate adds a multi-class update procedure. The
// transaction conflicts with every transaction sharing any of its classes
// and runs only when it heads all of their queues. Must be called before
// Start. With WithShards, a procedure whose classes span several shards
// is executed as a cross-shard transaction (atomic across shards, at
// two-phase cost); keep hot procedures single-shard by pinning their
// classes together.
func (c *Cluster) RegisterMultiUpdate(u MultiUpdate) error {
	if c.started {
		return ErrStarted
	}
	return c.registry.RegisterMulti(u)
}

// MustRegisterMultiUpdate is RegisterMultiUpdate that panics on error.
func (c *Cluster) MustRegisterMultiUpdate(u MultiUpdate) {
	if err := c.RegisterMultiUpdate(u); err != nil {
		panic(err)
	}
}

// RegisterQuery adds a read-only stored procedure. Must be called before
// Start.
func (c *Cluster) RegisterQuery(q Query) error {
	if c.started {
		return ErrStarted
	}
	return c.registry.RegisterQuery(q)
}

// MustRegisterQuery is RegisterQuery that panics on error.
func (c *Cluster) MustRegisterQuery(q Query) {
	if err := c.RegisterQuery(q); err != nil {
		panic(err)
	}
}

// Seed loads an initial value into every replica's copy of a class before
// the cluster starts (version index 0). The seed lands only in the
// shard owning the class.
func (c *Cluster) Seed(class Class, key Key, value Value) error {
	if c.started {
		return ErrStarted
	}
	v := value
	c.seeds = append(c.seeds, seedEntry{class: class, fn: func(s *storage.Store) {
		s.Load(storage.Partition(class), key, v)
	}})
	return nil
}

// Shards reports the number of shard groups.
func (c *Cluster) Shards() int { return c.cfg.shards }

// ShardOf reports the shard owning a conflict class.
func (c *Cluster) ShardOf(class Class) int { return c.smap.Locate(class) }

// PinClass forces a class onto a shard, overriding the consistent-hash
// assignment. Must be called before Start; every process of a deployment
// must apply identical pins in identical order.
func (c *Cluster) PinClass(class Class, shardID int) error {
	if c.started {
		return ErrStarted
	}
	return c.smap.Pin(class, shardID)
}

// siteDir is one replica's durability directory. The single-shard layout
// (site-N directly under the root) predates sharding and is preserved so
// existing data directories keep recovering.
func (c *Cluster) siteDir(g, i int) string {
	if c.cfg.shards == 1 {
		return filepath.Join(c.cfg.durDir, fmt.Sprintf("site-%d", i))
	}
	return filepath.Join(c.cfg.durDir, fmt.Sprintf("shard-%d", g), fmt.Sprintf("site-%d", i))
}

// buildSite assembles one site's full stack in one group — broadcast
// engine (with optional rejoin state), membership tracker, replica, stop
// function — on the given endpoint. The caller provides the store
// (recovered or fresh) and the definitive index it is consistent at; the
// tracker is primed from the committed configuration that store carries.
func (c *Cluster) buildSite(grp *group, g, i int, ep transport.Endpoint, join *abcast.JoinState,
	store *storage.Store, base int64, dur *recovery.Durability) (*db.Replica, *abcast.Optimistic, *member.Tracker, func(), error) {
	mcfg, err := member.CommittedConfig(store)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("otpdb: site %d membership: %w", i, err)
	}
	tracker := member.NewTracker(mcfg)
	if g == 0 {
		// One epoch-change event per site, not per shard replica: group 0
		// is where membership is gated (see tryAutoReplace).
		tracker.SetEvents(c.cfg.events, i)
	}
	scope := c.siteScope(g, i)
	var bc abcast.Broadcaster
	var opt *abcast.Optimistic
	var det *fd.Detector
	var stopEngine func()
	switch c.cfg.ordering {
	case ConservativeOrdering:
		seq := abcast.NewSequencer(ep)
		bc, stopEngine = seq, func() { _ = seq.Stop() }
	default:
		ccfg := consensus.Config{
			Endpoint:     ep,
			RoundTimeout: c.cfg.roundTimeout,
			View:         tracker,
			Metrics:      scope,
		}
		if join != nil {
			ccfg.CatchUpFrom = join.StartStage
		}
		if c.cfg.autoReplace && g == 0 {
			// One detector per site, on the first group's endpoint: site i
			// of every group shares a failure domain, so one verdict covers
			// all shards. It doubles as the consensus suspector — rotation
			// and replacement then act on the same evidence. The default
			// clock-derived incarnation makes a rebuilt site supersede its
			// dead predecessor's retransmitted heartbeats.
			interval := c.cfg.suspectWin / 8
			if interval > 25*time.Millisecond {
				interval = 25 * time.Millisecond
			}
			det = fd.New(ep, fd.Config{Interval: interval, Metrics: scope, Events: c.cfg.events})
			tracker.OnChange(func(next member.Config) { det.SetMembers(next.IDs()) })
			ccfg.Suspector = det
		}
		cons := consensus.New(ccfg)
		cons.Start()
		aopts := []abcast.Option{abcast.WithDefBase(uint64(base)), abcast.WithMetrics(scope)}
		if c.cfg.defLogCap > 0 {
			aopts = append(aopts, abcast.WithDefLogCap(c.cfg.defLogCap))
		}
		if join != nil {
			aopts = append(aopts, abcast.WithJoin(*join))
		}
		o := abcast.NewOptimistic(ep, cons, aopts...)
		opt = o
		bc, stopEngine = o, func() { _ = o.Stop(); cons.Stop() }
	}
	if err := bc.Start(); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("otpdb: start broadcast %d: %w", i, err)
	}
	cfg := db.Config{
		ID:             transport.NodeID(i),
		Broadcast:      bc,
		Registry:       c.registry,
		Store:          store,
		WriteMode:      c.cfg.writeMode,
		Queries:        c.cfg.queryMode,
		PruneInterval:  c.cfg.pruneEvery,
		CommitDelay:    c.cfg.commitDelay,
		Durability:     dur,
		InitialTOIndex: base,
		Metrics:        scope,
		Trace:          c.cfg.trace,
		Shard:          g,
		ConfigClass:    member.Class,
		OnConfigCommit: func(v storage.Value, _ int64) {
			if next, derr := member.Decode(v); derr == nil {
				tracker.Apply(next)
			}
		},
	}
	if grp.recorder != nil {
		cfg.History = grp.recorder
	}
	rep, err := db.New(cfg)
	if err != nil {
		stopEngine()
		return nil, nil, nil, nil, fmt.Errorf("otpdb: replica %d: %w", i, err)
	}
	rep.Start()
	// Every optimistic site doubles as a state-transfer donor: the same
	// wire protocol serves in-process rejoin (RestartSite) and TCP
	// clusters (cmd/otpd).
	var xs *statex.Server
	if opt != nil {
		xs = statex.NewServer(ep, statex.ReplicaSource{Replica: rep, Engine: opt},
			statex.WithEvents(c.cfg.events))
		xs.Start()
	}
	stop := func() {
		if xs != nil {
			xs.Stop()
		}
		rep.Stop()
		stopEngine()
	}
	if det != nil {
		det.Start()
		det.SetMembers(tracker.Config().IDs())
		stopReplace := make(chan struct{})
		go c.autoReplaceLoop(i, det, stopReplace)
		inner := stop
		stop = func() {
			// The replacer is signalled, not joined: the winner of a
			// replacement holds c.mu while stopping the victim's stack,
			// and the victim's own replacer may itself be blocked on c.mu.
			// Joining the detector is safe — its goroutine never takes
			// cluster locks.
			close(stopReplace)
			det.Stop()
			inner()
		}
	}
	return rep, opt, tracker, stop, nil
}

// seedStore loads a fresh store with every seed owned by shard g.
func (c *Cluster) seedStore(g int, store *storage.Store) {
	for _, se := range c.seeds {
		if se.class == "" || c.smap.Locate(se.class) == g {
			se.fn(store)
		}
	}
}

// Start builds the networks, broadcast engines and replicas of every
// shard group, and begins processing. With durability enabled, every
// replica first recovers its committed state from its data directory and
// resumes at the recovered definitive index.
func (c *Cluster) Start() error {
	if c.started {
		return ErrStarted
	}
	c.started = true
	// The group configuration is ordinary replicated state: register the
	// reserved change procedure and seed the epoch-1 bootstrap config at
	// version 0 of every store (recovered state overrides the seed).
	// Each shard group carries its own copy — membership changes are
	// committed through every group's definitive order.
	if err := member.RegisterProc(c.registry); err != nil {
		return fmt.Errorf("otpdb: register membership procedure: %w", err)
	}
	// Cross-shard machinery: the prepare/decide procedures exist in
	// every configuration (inert at one shard), the hub connects their
	// local executions, the coordinator drives multi-shard commits.
	c.shub = shard.NewHub(shard.Config{ResolveAfter: c.cfg.resolveAfter, Metrics: c.cfg.metrics.Scope()})
	if err := c.shub.Register(c.registry); err != nil {
		return fmt.Errorf("otpdb: register cross-shard procedures: %w", err)
	}
	c.coord = shard.NewCoordinator(c.shub, c.smap, c.registry, shard.CoordConfig{
		VoteTimeout: c.cfg.voteTimeout,
		Metrics:     c.cfg.metrics.Scope(),
		Trace:       c.cfg.trace,
	})
	bootstrapIDs := make(map[transport.NodeID]string, c.cfg.replicas)
	for i := 0; i < c.cfg.replicas; i++ {
		bootstrapIDs[transport.NodeID(i)] = ""
	}
	bootstrap := member.Bootstrap(bootstrapIDs)
	c.seeds = append(c.seeds, seedEntry{class: "", fn: func(s *storage.Store) { member.Seed(s, bootstrap) }})

	for g := 0; g < c.cfg.shards; g++ {
		grp := &group{joinModes: make(map[int]statex.Mode)}
		if c.cfg.recordHist {
			grp.recorder = history.NewRecorder()
		}
		var hubOpts []transport.MemOption
		// Distinct seeds decorrelate the groups' network randomness.
		hubOpts = append(hubOpts, transport.WithSeed(c.cfg.seed+int64(g)))
		if c.cfg.netDelay > 0 {
			hubOpts = append(hubOpts, transport.WithDelay(c.cfg.netDelay))
		}
		if c.cfg.netJitter > 0 {
			hubOpts = append(hubOpts, transport.WithJitter(c.cfg.netJitter))
		}
		grp.hub = transport.NewHub(c.cfg.replicas, hubOpts...)
		for i := 0; i < c.cfg.replicas; i++ {
			ep := grp.hub.Endpoint(transport.NodeID(i))
			store := storage.NewStore()
			c.seedStore(g, store)
			var dur *recovery.Durability
			base := int64(0)
			if c.cfg.durDir != "" {
				d, err := recovery.Open(c.siteDir(g, i), recovery.Options{
					Sync:            c.cfg.syncPolicy,
					CheckpointEvery: c.cfg.ckptEvery,
					Metrics:         c.siteScope(g, i),
				})
				if err != nil {
					return fmt.Errorf("otpdb: durability %d/%d: %w", g, i, err)
				}
				b, err := d.Recover(store)
				if err != nil {
					_ = d.Close()
					return fmt.Errorf("otpdb: recover %d/%d: %w", g, i, err)
				}
				dur, base = d, b
			}
			if i > 0 && c.cfg.durDir != "" && base != grp.bases[0] {
				// Sites that recovered different definitive indexes would
				// assign different TOIndexes to the same decisions and diverge
				// silently. This happens after an unclean multi-site shutdown
				// under the grouped/off sync policies; the crashed-site path
				// is RestartSite against a running majority, not a cold
				// restart. Fail loudly instead.
				_ = dur.Close()
				return fmt.Errorf("otpdb: durable sites of shard %d recovered to different indexes (site 0: %d, site %d: %d); restart lagging sites into a running cluster with RestartSite",
					g, grp.bases[0], i, base)
			}
			rep, opt, tracker, stop, err := c.buildSite(grp, g, i, ep, nil, store, base, dur)
			if err != nil {
				if dur != nil {
					_ = dur.Close()
				}
				return err
			}
			grp.replicas = append(grp.replicas, rep)
			grp.engines = append(grp.engines, opt)
			grp.trackers = append(grp.trackers, tracker)
			grp.stops = append(grp.stops, stop)
			grp.bases = append(grp.bases, base)
		}
		c.groups = append(c.groups, grp)
	}
	for i := 0; i < c.cfg.replicas; i++ {
		c.sessions = append(c.sessions, &Session{c: c, site: i})
		c.attachSite(i)
	}
	c.shub.Start()
	return nil
}

// attachSite wires one site's replicas (one per shard) into the
// cross-shard hub. The getters re-resolve through the cluster on every
// use, so crash, restart and replacement need no re-attachment.
func (c *Cluster) attachSite(site int) {
	for g := 0; g < c.cfg.shards; g++ {
		g := g
		c.shub.Attach(g, site, func() *db.Replica {
			c.mu.RLock()
			defer c.mu.RUnlock()
			if !c.started || c.stopped || c.crashed[site] || c.removed[site] {
				return nil
			}
			if g >= len(c.groups) || site >= len(c.groups[g].replicas) {
				return nil
			}
			return c.groups[g].replicas[site]
		})
	}
}

// Stop shuts the cluster down, flushing durable state. It is idempotent.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if !c.started || c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	groups := append([]*group{}, c.groups...)
	c.mu.Unlock()
	if c.shub != nil {
		c.shub.Stop()
	}
	for _, grp := range groups {
		for _, stop := range grp.stops {
			stop()
		}
		grp.hub.Close()
	}
}

// Size reports the number of site slots (including crashed and removed
// sites; AddSite grows it).
func (c *Cluster) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.sessions) > 0 {
		return len(c.sessions)
	}
	return c.cfg.replicas
}

// RecoveredIndex reports the definitive index a durable site resumed at
// on Start (0 for a fresh or non-durable site). With WithShards this is
// shard 0's index; see ShardRecoveredIndex.
func (c *Cluster) RecoveredIndex(site int) (int64, error) {
	return c.ShardRecoveredIndex(site, 0)
}

// ShardRecoveredIndex reports the definitive index one shard of a
// durable site resumed at on Start.
func (c *Cluster) ShardRecoveredIndex(site, shardID int) (int64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	grp, err := c.groupLocked(shardID)
	if err != nil {
		return 0, err
	}
	if _, err := c.replicaLocked(shardID, site); err != nil {
		return 0, err
	}
	return grp.bases[site], nil
}

func (c *Cluster) groupLocked(g int) (*group, error) {
	if !c.started {
		return nil, ErrNotStarted
	}
	if g < 0 || g >= len(c.groups) {
		return nil, fmt.Errorf("%w: %d", ErrBadShard, g)
	}
	return c.groups[g], nil
}

func (c *Cluster) replica(g, site int) (*db.Replica, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.replicaLocked(g, site)
}

func (c *Cluster) replicaLocked(g, site int) (*db.Replica, error) {
	grp, err := c.groupLocked(g)
	if err != nil {
		return nil, err
	}
	if site < 0 || site >= len(grp.replicas) {
		return nil, fmt.Errorf("%w: %d", ErrBadSite, site)
	}
	return grp.replicas[site], nil
}

// Exec submits an update transaction at the given site and waits until it
// commits there. Committing at the submitting site implies the definitive
// order is fixed; all other sites commit the same transaction in the same
// relative order. It is a thin wrapper over the site's Session; use
// Session.Exec to also receive the typed Result.
func (c *Cluster) Exec(ctx context.Context, site int, proc string, args ...Value) error {
	sess, err := c.Session(site)
	if err != nil {
		return err
	}
	_, err = sess.Exec(ctx, proc, args...)
	return err
}

// Submit broadcasts an update transaction without waiting for its commit
// and returns its Handle, so fire-and-forget callers can still correlate
// the transaction (Handle.ID) or collect its Result later. It is a thin
// wrapper over the site's Session.
func (c *Cluster) Submit(site int, proc string, args ...Value) (*Handle, error) {
	sess, err := c.Session(site)
	if err != nil {
		return nil, err
	}
	return sess.SubmitAsync(proc, args...)
}

// QueryAt runs a read-only stored procedure locally at the given site,
// against a consistent snapshot (Section 5). It is a thin wrapper over
// the site's Session.
func (c *Cluster) QueryAt(ctx context.Context, site int, proc string, args ...Value) (Value, error) {
	sess, err := c.Session(site)
	if err != nil {
		return nil, err
	}
	return sess.Query(ctx, proc, args...)
}

// Read returns the latest committed value of a key at a site, outside any
// snapshot (a debugging convenience, not a transaction). The read is
// served by the shard owning the class. The returned Value aliases the
// committed version and must not be modified.
func (c *Cluster) Read(site int, class Class, key Key) (Value, bool, error) {
	rep, err := c.replica(c.smap.Locate(class), site)
	if err != nil {
		return nil, false, err
	}
	v, ok := rep.Store().Get(storage.Partition(class), key)
	return v, ok, nil
}

// Stats aggregates per-site protocol counters.
type Stats struct {
	// Site is the replica index.
	Site int
	// Commits, Aborts, Reorders mirror the OTP manager counters,
	// summed over the site's shard replicas.
	Commits, Aborts, Reorders uint64
	// Pending is the number of delivered but uncommitted transactions.
	Pending int
}

// SiteStats returns one site's counters, aggregated over its shards.
func (c *Cluster) SiteStats(site int) (Stats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := Stats{Site: site}
	for g := range c.groups {
		rep, err := c.replicaLocked(g, site)
		if err != nil {
			return Stats{}, err
		}
		st := rep.Manager().Stats()
		out.Commits += st.Commits
		out.Aborts += st.Aborts
		out.Reorders += st.Reorders
		out.Pending += rep.Manager().Pending()
	}
	return out, nil
}

// ShardStats returns the counters of one shard replica at one site.
func (c *Cluster) ShardStats(site, shardID int) (Stats, error) {
	rep, err := c.replica(shardID, site)
	if err != nil {
		return Stats{}, err
	}
	st := rep.Manager().Stats()
	return Stats{
		Site:     site,
		Commits:  st.Commits,
		Aborts:   st.Aborts,
		Reorders: st.Reorders,
		Pending:  rep.Manager().Pending(),
	}, nil
}

// WaitForCommits blocks until every live replica has committed at least n
// update transactions and has none pending, or the context is cancelled.
// Crashed sites are skipped. With WithShards the threshold applies to
// each site's commits summed across shards.
func (c *Cluster) WaitForCommits(ctx context.Context, n int) error {
	c.mu.RLock()
	if !c.started {
		c.mu.RUnlock()
		return ErrNotStarted
	}
	if len(c.groups) == 1 {
		var live []*db.Replica
		for i, rep := range c.groups[0].replicas {
			if !c.crashed[i] && !c.removed[i] {
				live = append(live, rep)
			}
		}
		c.mu.RUnlock()
		for _, rep := range live {
			if err := rep.WaitCommits(ctx, n); err != nil {
				return err
			}
		}
		return nil
	}
	// Sharded: poll each live site's definitive indexes summed across
	// groups (at quiescence every TO delivery has committed exactly
	// once, so sum(LastTO) counts commits including recovered bases).
	type siteReps struct{ reps []*db.Replica }
	var sites []siteReps
	for i := range c.groups[0].replicas {
		if c.crashed[i] || c.removed[i] {
			continue
		}
		var sr siteReps
		for g := range c.groups {
			sr.reps = append(sr.reps, c.groups[g].replicas[i])
		}
		sites = append(sites, sr)
	}
	c.mu.RUnlock()
	for _, sr := range sites {
		for {
			var total int64
			pending := 0
			for _, rep := range sr.reps {
				total += rep.LastTO()
				pending += rep.Manager().Pending()
			}
			if total >= int64(n) && pending == 0 {
				break
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
	return nil
}

// Converged reports whether all live replicas currently hold identical
// committed state, shard by shard. Crashed sites are skipped.
func (c *Cluster) Converged() (bool, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.started {
		return false, ErrNotStarted
	}
	for _, grp := range c.groups {
		first := -1
		for i, rep := range grp.replicas {
			if c.crashed[i] || c.removed[i] {
				continue
			}
			if first < 0 {
				first = i
				continue
			}
			if rep.Store().Digest() != grp.replicas[first].Store().Digest() {
				return false, nil
			}
		}
	}
	return true, nil
}

// CrashSite silences a site at the network level — every shard replica
// it hosts — modelling a crash-stop failure (Section 2: sites fail by
// crashing). With the optimistic ordering the cluster keeps committing
// as long as a majority of sites remains alive.
func (c *Cluster) CrashSite(site int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.replicaLocked(0, site); err != nil {
		return err
	}
	if c.removed[site] {
		return fmt.Errorf("otpdb: site %d was removed from the group", site)
	}
	if c.crashed == nil {
		c.crashed = make(map[int]bool)
	}
	c.crashed[site] = true
	for _, grp := range c.groups {
		grp.hub.Crash(transport.NodeID(site))
	}
	return nil
}

// RestartSite brings a crashed site back into the running cluster — the
// live-rejoin half of the durability story (the paper's Section 3.2
// defers both to "traditional recovery techniques"). Every shard replica
// the site hosts runs the same statex wire protocol a TCP otpd uses,
// over the in-process transport:
//
//  1. The site recovers whatever its local durability directory holds
//     (nothing for in-memory sites) and advertises that index to a live
//     donor (statex.Fetch, failing over across live peers).
//  2. The donor answers tail-only when its retained definitive history
//     covers the gap, or streams a consistent checkpoint of its current
//     state first (the same MVCC snapshot Section 5 queries read, so no
//     site pauses) — see internal/statex for the negotiation.
//  3. The site installs the received state, replays the backlog through
//     a fresh engine primed with the join state, and re-enters
//     consensus at the current stage; missed stage decisions and
//     message bodies are retransmitted by peers on request.
//
// The restarted site then executes and commits new transactions in
// agreement with the survivors. With durability enabled a transferred
// checkpoint resets the local data directory, so a later cold restart
// recovers from local state again; a tail-only rejoin keeps the local
// log and continues appending above it.
//
// RestartSite requires OptimisticOrdering and at least one live site.
// Sessions bound to the site transparently observe the new replicas;
// waiters pending from before the crash fail with ErrStopped.
func (c *Cluster) RestartSite(ctx context.Context, site int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.replicaLocked(0, site); err != nil {
		return err
	}
	if c.removed[site] {
		return fmt.Errorf("otpdb: site %d was removed from the group (use AddSite or ReplaceSite)", site)
	}
	if !c.crashed[site] {
		return fmt.Errorf("otpdb: site %d is not crashed", site)
	}
	if c.cfg.ordering != OptimisticOrdering {
		return errors.New("otpdb: RestartSite requires OptimisticOrdering")
	}
	return c.rejoinLocked(ctx, site, false)
}

// rejoinLocked rebuilds a crashed site's stack — one rejoin per shard
// group — through statex transfers from live donors. With wipe set the
// site's previous durable state is discarded first (the ReplaceSite
// semantics, where the returning identity is a fresh machine). A partial
// failure leaves the site crashed: every group's endpoint is re-downed,
// so a retry starts from a clean state. Callers hold c.mu and have
// validated the site.
func (c *Cluster) rejoinLocked(ctx context.Context, site int, wipe bool) error {
	for g := range c.groups {
		if err := c.rejoinGroupLocked(ctx, g, site, wipe); err != nil {
			for _, grp := range c.groups {
				grp.hub.Crash(transport.NodeID(site))
			}
			return fmt.Errorf("otpdb: shard %d: %w", g, err)
		}
	}
	delete(c.crashed, site)
	return nil
}

func (c *Cluster) rejoinGroupLocked(ctx context.Context, g, site int, wipe bool) error {
	grp := c.groups[g]
	var donors []transport.NodeID
	for i := range grp.replicas {
		if !c.crashed[i] && !c.removed[i] && i != site {
			donors = append(donors, transport.NodeID(i))
		}
	}
	if len(donors) == 0 {
		return errors.New("otpdb: no live peer to rejoin from")
	}

	// Tear down the dead stack and revive the endpoint. If any later
	// step fails the caller re-crashes the endpoint, so peers do not
	// flood a mailbox nobody drains and a retry starts from a clean
	// "crashed" state.
	grp.stops[site]()
	ep := grp.hub.Restart(transport.NodeID(site))

	if wipe && c.cfg.durDir != "" {
		// The replacement is a new machine: the dead incarnation's
		// durable history does not come with it.
		if err := os.RemoveAll(c.siteDir(g, site)); err != nil {
			return fmt.Errorf("otpdb: wipe durability %d: %w", site, err)
		}
	}

	// Local recovery first: a durable site advertises the index its own
	// checkpoint + log reach, so a short outage costs only a tail
	// transfer. The store is seeded exactly as Start seeds fresh ones (a
	// transferred checkpoint, when needed, replaces the content anyway).
	store := storage.NewStore()
	c.seedStore(g, store)
	base := int64(0)
	var dur *recovery.Durability
	if c.cfg.durDir != "" {
		d, derr := recovery.Open(c.siteDir(g, site), recovery.Options{
			Sync:            c.cfg.syncPolicy,
			CheckpointEvery: c.cfg.ckptEvery,
			Metrics:         c.siteScope(g, site),
		})
		if derr != nil {
			return fmt.Errorf("otpdb: reopen durability %d: %w", site, derr)
		}
		b, rerr := d.Recover(store)
		if rerr != nil {
			_ = d.Close()
			return fmt.Errorf("otpdb: recover %d: %w", site, rerr)
		}
		dur, base = d, b
	}

	xfer, err := statex.Fetch(ctx, ep, base, donors, statex.Options{
		Parallel: true,
		Metrics:  c.siteScope(g, site),
		Events:   c.cfg.events,
	})
	if err != nil {
		if dur != nil {
			_ = dur.Close()
		}
		return fmt.Errorf("otpdb: state transfer %d: %w", site, err)
	}
	if xfer.Mode == statex.CheckpointTail {
		// The donor's snapshot replaces local state wholesale; with
		// durability the directory is reset to it so cold restarts
		// recover from here on.
		store = storage.NewStore()
		store.InstallCheckpoint(xfer.Checkpoint)
		base = xfer.Base
		if dur != nil {
			if rerr := dur.ResetTo(xfer.Checkpoint); rerr != nil {
				_ = dur.Close()
				return fmt.Errorf("otpdb: reset durability %d: %w", site, rerr)
			}
		}
	}
	join := xfer.Join
	rep, opt, tracker, stop, err := c.buildSite(grp, g, site, ep, &join, store, base, dur)
	if err != nil {
		if dur != nil {
			_ = dur.Close()
		}
		return err
	}
	grp.replicas[site] = rep
	grp.engines[site] = opt
	grp.trackers[site] = tracker
	grp.stops[site] = stop
	grp.bases[site] = base
	grp.joinModes[site] = xfer.Mode
	return nil
}

// RejoinMode reports how a site last rejoined the cluster: "tail-only",
// "checkpoint+tail", or "" when the site never went through RestartSite.
// With WithShards this is shard 0's mode (shards negotiate
// independently).
func (c *Cluster) RejoinMode(site int) (string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, err := c.replicaLocked(0, site); err != nil {
		return "", err
	}
	mode, ok := c.groups[0].joinModes[site]
	if !ok {
		return "", nil
	}
	return mode.String(), nil
}

// liveSiteLocked returns the index of a live (not crashed, not removed)
// site, preferring sites other than avoid. Callers hold c.mu (read or
// write).
func (c *Cluster) liveSiteLocked(avoid int) (int, error) {
	fallback := -1
	for i := range c.groups[0].replicas {
		if c.crashed[i] || c.removed[i] {
			continue
		}
		if i != avoid {
			return i, nil
		}
		fallback = i
	}
	if fallback >= 0 {
		return fallback, nil
	}
	return 0, errors.New("otpdb: no live site")
}

// proposeChange commits a membership change through one shard group's
// definitive order: it reads the submitting site's current configuration
// in that group, derives the successor via mutate, and executes the
// reserved change procedure at that site's group replica. The commit of
// that transaction is the epoch switch — every site applies the new
// quorum, and the in-process transport follows automatically (the hub
// routes by identifier). A concurrent change loses the definitive-order
// race and surfaces member.ErrEpochConflict; retry against the new
// configuration. Site-level membership operations apply the change to
// every group in turn.
func (c *Cluster) proposeChange(ctx context.Context, g, submitter int,
	mutate func(member.Config) (member.Config, error)) (member.Config, error) {
	c.mu.RLock()
	if !c.started || c.stopped {
		c.mu.RUnlock()
		return member.Config{}, ErrNotStarted
	}
	if c.cfg.ordering != OptimisticOrdering {
		c.mu.RUnlock()
		return member.Config{}, errors.New("otpdb: membership changes require OptimisticOrdering")
	}
	grp := c.groups[g]
	cfg := grp.trackers[submitter].Config()
	rep := grp.replicas[submitter]
	c.mu.RUnlock()
	proposed, err := mutate(cfg)
	if err != nil {
		return member.Config{}, err
	}
	if _, err := rep.Exec(ctx, member.Proc, member.Encode(proposed)); err != nil {
		return member.Config{}, err
	}
	return proposed, nil
}

// errAddRaced reports a concurrent AddSite; no rollback is attempted
// (the committed addition belongs to the other caller).
var errAddRaced = errors.New("otpdb: concurrent AddSite raced")

// AddSite grows the group by one site: in each shard group in turn, the
// addition is committed as a definitively-ordered configuration change
// (every replica switches to the bigger quorum at the same commit), then
// the new site's replica is built, statex-joins from a live donor at the
// new configuration's base index, and activates. It returns the new
// site's index; sessions, queries and all Cluster methods accept it
// immediately.
//
// If a change commits but the site fails to come up (donor gone, ctx
// expired), AddSite rolls the committed additions back — best effort —
// so no grown quorum counts a site that does not exist; whether or not
// the rollback lands, calling AddSite again detects committed-but-
// unbuilt members and resumes them instead of proposing duplicates.
func (c *Cluster) AddSite(ctx context.Context) (int, error) {
	c.mu.RLock()
	if !c.started || c.stopped {
		c.mu.RUnlock()
		return 0, ErrNotStarted
	}
	newID := len(c.sessions)
	submitter, err := c.liveSiteLocked(-1)
	c.mu.RUnlock()
	if err != nil {
		return 0, err
	}
	built := 0
	for g := 0; g < c.cfg.shards; g++ {
		c.mu.RLock()
		resuming := c.groups[g].trackers[submitter].Config().Has(transport.NodeID(newID))
		c.mu.RUnlock()
		if !resuming {
			if _, err = c.proposeChange(ctx, g, submitter, func(cfg member.Config) (member.Config, error) {
				return cfg.WithAdd(member.Site{ID: transport.NodeID(newID)})
			}); err != nil {
				break
			}
		}
		if err = c.buildAddedSite(ctx, g, newID); err != nil {
			if errors.Is(err, errAddRaced) {
				return 0, err
			}
			// This group's addition is committed but the replica never
			// came up: vote the phantom back out (detached context — ctx
			// may be what failed). The rollback below also covers the
			// groups already built.
			break
		}
		built++
	}
	if err != nil {
		rbCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		var rbErrs []error
		for g := 0; g < c.cfg.shards; g++ {
			c.mu.RLock()
			committed := g < len(c.groups) && c.groups[g].trackers[submitter].Config().Has(transport.NodeID(newID))
			c.mu.RUnlock()
			if !committed {
				continue
			}
			if g < built {
				// Tear the already-built replica down before removing it.
				c.mu.Lock()
				grp := c.groups[g]
				if len(grp.replicas) == newID+1 {
					grp.stops[newID]()
					grp.hub.Crash(transport.NodeID(newID))
					grp.replicas = grp.replicas[:newID]
					grp.engines = grp.engines[:newID]
					grp.trackers = grp.trackers[:newID]
					grp.stops = grp.stops[:newID]
					grp.bases = grp.bases[:newID]
				}
				c.mu.Unlock()
			}
			if _, rerr := c.proposeChange(rbCtx, g, submitter, func(cfg member.Config) (member.Config, error) {
				return cfg.WithRemove(transport.NodeID(newID))
			}); rerr != nil {
				rbErrs = append(rbErrs, fmt.Errorf("shard %d: %w", g, rerr))
			}
		}
		if len(rbErrs) > 0 {
			return 0, fmt.Errorf("%w (rollback of committed additions also failed: %v; retry AddSite to resume)", err, rbErrs)
		}
		return 0, err
	}
	c.mu.Lock()
	c.sessions = append(c.sessions, &Session{c: c, site: newID})
	c.mu.Unlock()
	c.attachSite(newID)
	return newID, nil
}

// buildAddedSite builds and activates the replica the committed addition
// admitted to one shard group: endpoint, fresh (or transferred) state,
// full stack.
func (c *Cluster) buildAddedSite(ctx context.Context, g, newID int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	grp := c.groups[g]
	if len(grp.replicas) != newID {
		return fmt.Errorf("%w: site table moved past %d", errAddRaced, newID)
	}
	// A resumed attempt may already have grown the hub; revive that
	// node instead of appending a second one.
	var ep transport.Endpoint
	if grp.hub.Len() > newID {
		ep = grp.hub.Restart(transport.NodeID(newID))
	} else {
		ep = grp.hub.Add()
	}
	var donors []transport.NodeID
	for i := range grp.replicas {
		if !c.crashed[i] && !c.removed[i] {
			donors = append(donors, transport.NodeID(i))
		}
	}
	fail := func(err error) error {
		grp.hub.Crash(transport.NodeID(newID))
		return err
	}
	store := storage.NewStore()
	c.seedStore(g, store)
	base := int64(0)
	var dur *recovery.Durability
	if c.cfg.durDir != "" {
		d, derr := recovery.Open(c.siteDir(g, newID), recovery.Options{
			Sync:            c.cfg.syncPolicy,
			CheckpointEvery: c.cfg.ckptEvery,
			Metrics:         c.siteScope(g, newID),
		})
		if derr != nil {
			return fail(fmt.Errorf("otpdb: durability %d: %w", newID, derr))
		}
		dur = d
	}
	xfer, err := statex.Fetch(ctx, ep, base, donors, statex.Options{Parallel: true, Metrics: c.siteScope(g, newID)})
	if err != nil {
		if dur != nil {
			_ = dur.Close()
		}
		return fail(fmt.Errorf("otpdb: state transfer %d: %w", newID, err))
	}
	if xfer.Mode == statex.CheckpointTail {
		store = storage.NewStore()
		store.InstallCheckpoint(xfer.Checkpoint)
		base = xfer.Base
		if dur != nil {
			if rerr := dur.ResetTo(xfer.Checkpoint); rerr != nil {
				_ = dur.Close()
				return fail(fmt.Errorf("otpdb: reset durability %d: %w", newID, rerr))
			}
		}
	}
	join := xfer.Join
	rep, opt, tracker, stop, err := c.buildSite(grp, g, newID, ep, &join, store, base, dur)
	if err != nil {
		if dur != nil {
			_ = dur.Close()
		}
		return fail(err)
	}
	grp.replicas = append(grp.replicas, rep)
	grp.engines = append(grp.engines, opt)
	grp.trackers = append(grp.trackers, tracker)
	grp.stops = append(grp.stops, stop)
	grp.bases = append(grp.bases, base)
	grp.joinModes[newID] = xfer.Mode
	return nil
}

// RemoveSite shrinks the group: the removal is committed as a
// definitively-ordered configuration change in every shard group —
// survivors drop to the smaller quorum and stop counting the ghost —
// and the removed site's stacks are then stopped. The site index stays
// allocated (sessions bound to it fail with ErrStopped); the identifier
// can return to the group only through ReplaceSite-style re-admission
// semantics, not RestartSite.
func (c *Cluster) RemoveSite(ctx context.Context, site int) error {
	c.mu.RLock()
	if _, err := c.replicaLocked(0, site); err != nil {
		c.mu.RUnlock()
		return err
	}
	if c.removed[site] {
		c.mu.RUnlock()
		return fmt.Errorf("otpdb: site %d already removed", site)
	}
	submitter, err := c.liveSiteLocked(site)
	c.mu.RUnlock()
	if err != nil {
		return err
	}
	for g := 0; g < c.cfg.shards; g++ {
		if _, err := c.proposeChange(ctx, g, submitter, func(cfg member.Config) (member.Config, error) {
			return cfg.WithRemove(transport.NodeID(site))
		}); err != nil {
			return fmt.Errorf("otpdb: shard %d removal: %w", g, err)
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.removed[site] {
		return nil
	}
	for _, grp := range c.groups {
		if !c.crashed[site] {
			grp.stops[site]()
		}
		grp.hub.Crash(transport.NodeID(site))
	}
	if c.removed == nil {
		c.removed = make(map[int]bool)
	}
	c.removed[site] = true
	delete(c.crashed, site)
	return nil
}

// ReplaceSite re-admits a crashed site's identifier as a fresh process —
// remove + add in one epoch, the "permanently dead machine replaced by a
// new one" operation. The change is committed through every shard
// group's definitive order first (survivors switch epochs and reset the
// identity's failure suspicion), then the replacement is built from
// nothing: its previous durable state, if any, is wiped, and it
// statex-joins from live donors exactly as AddSite's fresh site does.
// Requires the site to be crashed (crash it first; replacing a live site
// is a programming error).
func (c *Cluster) ReplaceSite(ctx context.Context, site int) error {
	c.mu.RLock()
	if _, err := c.replicaLocked(0, site); err != nil {
		c.mu.RUnlock()
		return err
	}
	switch {
	case c.removed[site]:
		c.mu.RUnlock()
		return fmt.Errorf("otpdb: site %d was removed from the group", site)
	case !c.crashed[site]:
		c.mu.RUnlock()
		return fmt.Errorf("otpdb: site %d is not crashed; ReplaceSite re-admits dead sites", site)
	}
	submitter, err := c.liveSiteLocked(site)
	c.mu.RUnlock()
	if err != nil {
		return err
	}
	for g := 0; g < c.cfg.shards; g++ {
		if _, err := c.proposeChange(ctx, g, submitter, func(cfg member.Config) (member.Config, error) {
			return cfg.WithReplace(transport.NodeID(site), "")
		}); err != nil {
			return fmt.Errorf("otpdb: shard %d replacement: %w", g, err)
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.crashed[site] || c.removed[site] {
		return fmt.Errorf("otpdb: site %d changed state during ReplaceSite", site)
	}
	return c.rejoinLocked(ctx, site, true)
}

// Epoch reports the membership epoch a site currently runs under (shard
// 0's; site-level membership operations move all shards together, but a
// concurrent change is visible in some shards first).
func (c *Cluster) Epoch(site int) (uint64, error) {
	return c.ShardEpoch(site, 0)
}

// ShardEpoch reports the membership epoch of one shard at one site.
func (c *Cluster) ShardEpoch(site, shardID int) (uint64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, err := c.replicaLocked(shardID, site); err != nil {
		return 0, err
	}
	return c.groups[shardID].trackers[site].Epoch(), nil
}

// Members reports the group membership as a site currently sees it
// (shard 0's view), in ascending site order.
func (c *Cluster) Members(site int) ([]int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, err := c.replicaLocked(0, site); err != nil {
		return nil, err
	}
	ids := c.groups[0].trackers[site].Members()
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out, nil
}

// DigestAt returns a hash of a site's committed state — all shards
// combined in shard order — for convergence comparisons across sites.
func (c *Cluster) DigestAt(site int) (uint64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h := fnv.New64a()
	var buf [8]byte
	for g := range c.groups {
		rep, err := c.replicaLocked(g, site)
		if err != nil {
			return 0, err
		}
		d := rep.Store().Digest()
		for i := 0; i < 8; i++ {
			buf[i] = byte(d >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	return h.Sum64(), nil
}

// DumpEngine returns a debug snapshot of a site's OPT-ABcast ordering
// state (one line per shard): current stage, next decision to process,
// and any wedged definitive queue. Diagnostics only — the format is not
// stable.
func (c *Cluster) DumpEngine(site int) (string, error) {
	c.mu.RLock()
	engines := make([]*abcast.Optimistic, 0, len(c.groups))
	for g := range c.groups {
		if _, err := c.replicaLocked(g, site); err != nil {
			c.mu.RUnlock()
			return "", err
		}
		engines = append(engines, c.groups[g].engines[site])
	}
	c.mu.RUnlock()
	var b strings.Builder
	for g, eng := range engines {
		if g > 0 {
			b.WriteByte('\n')
		}
		if eng == nil {
			fmt.Fprintf(&b, "shard %d: no optimistic engine", g)
			continue
		}
		fmt.Fprintf(&b, "shard %d: %s", g, eng.Dump())
	}
	return b.String(), nil
}

// ShardDigest returns a hash of one shard's committed state at a site.
func (c *Cluster) ShardDigest(site, shardID int) (uint64, error) {
	rep, err := c.replica(shardID, site)
	if err != nil {
		return 0, err
	}
	return rep.Store().Digest(), nil
}

// CheckHistory verifies 1-copy-serializability of everything executed so
// far, shard by shard (cross-shard atomicity is enforced by the
// two-phase protocol; each shard's history checker sees the cross
// transaction as that shard's prepare). It requires
// WithHistoryRecording.
func (c *Cluster) CheckHistory() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.cfg.recordHist {
		return errors.New("otpdb: history recording not enabled (use WithHistoryRecording)")
	}
	for g, grp := range c.groups {
		if err := grp.recorder.Check(); err != nil {
			return fmt.Errorf("shard %d: %w", g, err)
		}
	}
	return nil
}

// CheckInvariants validates the OTP scheduler invariants at every shard
// replica of every site.
func (c *Cluster) CheckInvariants() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.started {
		return ErrNotStarted
	}
	for g, grp := range c.groups {
		for i, rep := range grp.replicas {
			if err := rep.Manager().CheckInvariants(); err != nil {
				return fmt.Errorf("shard %d site %d: %w", g, i, err)
			}
		}
	}
	return nil
}

// compile-time checks that re-exported internals stay assignable.
var (
	_ = otp.ClassID("")
	_ = abcast.MsgID{}
)
