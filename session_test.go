package otpdb_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"otpdb"
)

// counterCluster registers a single-class increment procedure that
// returns the counter's new value, so result plumbing is observable.
func counterCluster(t *testing.T, opts ...otpdb.Option) *otpdb.Cluster {
	t.Helper()
	c, err := otpdb.NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	c.MustRegisterUpdate(otpdb.Update{
		Name:  "incr",
		Class: "counter",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			v, _ := ctx.Read("n")
			next := otpdb.Int64(otpdb.AsInt64(v) + 1)
			return next, ctx.Write("n", next)
		},
	})
	t.Cleanup(c.Stop)
	return c
}

func startedSession(t *testing.T, c *otpdb.Cluster, site int) *otpdb.Session {
	t.Helper()
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	sess, err := c.Session(site)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestSessionExecReturnsTypedResult(t *testing.T) {
	c := counterCluster(t, otpdb.WithReplicas(3))
	sess := startedSession(t, c, 0)
	ctx := context.Background()
	for want := int64(1); want <= 5; want++ {
		res, err := sess.Exec(ctx, "incr")
		if err != nil {
			t.Fatal(err)
		}
		if got := otpdb.AsInt64(res.Value); got != want {
			t.Fatalf("Result.Value = %d, want %d", got, want)
		}
		if res.TOIndex != want {
			t.Fatalf("Result.TOIndex = %d, want %d", res.TOIndex, want)
		}
		if res.Outcome != otpdb.FastPath {
			t.Fatalf("Result.Outcome = %v, want FastPath (no jitter, no contention)", res.Outcome)
		}
		if res.Latency <= 0 {
			t.Fatalf("Result.Latency = %v, want > 0", res.Latency)
		}
	}
}

// TestSubmitAsyncPipelining is the headline pipelining scenario: at least
// 100 transactions are submitted through one session before any handle is
// resolved; every handle then resolves with the correct return value and
// strictly increasing TO indexes (the in-memory transport without jitter
// is FIFO, so the definitive order follows submission order), and the
// recorded history stays 1-copy-serializable.
func TestSubmitAsyncPipelining(t *testing.T) {
	const txns = 120
	c := counterCluster(t, otpdb.WithReplicas(3), otpdb.WithHistoryRecording())
	sess := startedSession(t, c, 0)
	ctx := context.Background()

	handles := make([]*otpdb.Handle, 0, txns)
	for i := 0; i < txns; i++ {
		h, err := sess.SubmitAsync("incr")
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// All submitted before any resolution.
	lastTO := int64(0)
	for i, h := range handles {
		res, err := h.Wait(ctx)
		if err != nil {
			t.Fatalf("handle %d: %v", i, err)
		}
		if got := otpdb.AsInt64(res.Value); got != int64(i+1) {
			t.Fatalf("handle %d: value = %d, want %d", i, got, i+1)
		}
		if res.TOIndex <= lastTO {
			t.Fatalf("handle %d: TOIndex %d not monotone (previous %d)", i, res.TOIndex, lastTO)
		}
		lastTO = res.TOIndex
		if !h.Resolved() {
			t.Fatalf("handle %d: Resolved() = false after Wait", i)
		}
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := c.WaitForCommits(wctx, txns); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckHistory(); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Converged(); err != nil || !ok {
		t.Fatalf("converged = %v, %v", ok, err)
	}
}

// TestOutcomeReorderedUnderJitter drives a conflicting load from every
// site under network jitter until some transaction reports a non-fastpath
// outcome, proving outcome metadata reaches the handles. With jitter the
// tentative order regularly contradicts the definitive one, producing
// Reordered (the confirmed transaction moved up) and Retried (the
// displaced optimistic execution redone) outcomes.
func TestOutcomeReorderedUnderJitter(t *testing.T) {
	c := counterCluster(t, otpdb.WithReplicas(3),
		otpdb.WithNetworkJitter(2*time.Millisecond), otpdb.WithSeed(7))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	counts := map[otpdb.Outcome]int{}
	deadline := time.Now().Add(60 * time.Second)
	for round := 0; ; round++ {
		var wg sync.WaitGroup
		for site := 0; site < 3; site++ {
			sess, err := c.Session(site)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(sess *otpdb.Session) {
				defer wg.Done()
				var handles []*otpdb.Handle
				for i := 0; i < 20; i++ {
					h, err := sess.SubmitAsync("incr")
					if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					handles = append(handles, h)
				}
				for _, h := range handles {
					res, err := h.Result()
					if err != nil {
						t.Errorf("result: %v", err)
						return
					}
					mu.Lock()
					counts[res.Outcome]++
					mu.Unlock()
				}
			}(sess)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		mu.Lock()
		reordered := counts[otpdb.Reordered]
		retried := counts[otpdb.Retried]
		mu.Unlock()
		if reordered > 0 {
			t.Logf("after %d rounds: fastpath=%d reordered=%d retried=%d",
				round+1, counts[otpdb.FastPath], reordered, retried)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no Reordered outcome after %d rounds (fastpath=%d retried=%d)",
				round+1, counts[otpdb.FastPath], retried)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHandleContextCancellation cancels the wait on a pending handle; the
// transaction still commits (broadcast is irrevocable) and the same
// handle resolves normally afterwards.
func TestHandleContextCancellation(t *testing.T) {
	c := counterCluster(t)
	c.MustRegisterUpdate(otpdb.Update{
		Name:  "slow",
		Class: "counter",
		Cost:  300 * time.Millisecond,
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			return otpdb.Int64(42), nil
		},
	})
	sess := startedSession(t, c, 0)

	h, err := sess.SubmitAsync("slow")
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := h.Wait(wctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait under cancelled ctx = %v, want deadline exceeded", err)
	}
	if h.Resolved() {
		t.Fatal("handle resolved before the slow procedure could finish")
	}
	// The handle is still live: it resolves once the commit lands.
	res, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if otpdb.AsInt64(res.Value) != 42 {
		t.Fatalf("value after late resolution = %d, want 42", otpdb.AsInt64(res.Value))
	}
}

func TestExecBatchOrdering(t *testing.T) {
	const batch = 40
	c := counterCluster(t, otpdb.WithReplicas(2))
	sess := startedSession(t, c, 0)
	calls := make([]otpdb.Call, batch)
	for i := range calls {
		calls[i] = otpdb.Call{Proc: "incr"}
	}
	results, err := sess.ExecBatch(context.Background(), calls)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != batch {
		t.Fatalf("len(results) = %d, want %d", len(results), batch)
	}
	lastTO := int64(0)
	for i, res := range results {
		if got := otpdb.AsInt64(res.Value); got != int64(i+1) {
			t.Fatalf("call %d: value = %d, want %d (batch results out of order)", i, got, i+1)
		}
		if res.TOIndex <= lastTO {
			t.Fatalf("call %d: TOIndex %d not monotone", i, res.TOIndex)
		}
		lastTO = res.TOIndex
	}
}

// TestClusterSubmitReturnsHandle covers the fire-and-forget wrapper: the
// returned handle carries the broadcast ID and can still be resolved.
func TestClusterSubmitReturnsHandle(t *testing.T) {
	c := counterCluster(t)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	h, err := c.Submit(0, "incr")
	if err != nil {
		t.Fatal(err)
	}
	if (h.ID() == otpdb.TxnID{}) {
		t.Fatal("Submit handle has zero TxnID")
	}
	res, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if otpdb.AsInt64(res.Value) != 1 {
		t.Fatalf("value = %d, want 1", otpdb.AsInt64(res.Value))
	}
}

func TestSessionErrors(t *testing.T) {
	c := counterCluster(t)
	if _, err := c.Session(0); !errors.Is(err, otpdb.ErrNotStarted) {
		t.Fatalf("Session before Start = %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session(9); !errors.Is(err, otpdb.ErrBadSite) {
		t.Fatalf("Session(9) = %v", err)
	}
	sess, err := c.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SubmitAsync("no-such-proc"); err == nil {
		t.Fatal("SubmitAsync of unknown procedure succeeded")
	}
}

// TestPipeliningAcrossSessions floods the cluster from every site at once
// and checks values, convergence and serializability under contention.
func TestPipeliningAcrossSessions(t *testing.T) {
	const perSite = 40
	c := counterCluster(t, otpdb.WithReplicas(3),
		otpdb.WithHistoryRecording(), otpdb.WithNetworkJitter(500*time.Microsecond))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for site := 0; site < 3; site++ {
		sess, err := c.Session(site)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(site int, sess *otpdb.Session) {
			defer wg.Done()
			var handles []*otpdb.Handle
			for i := 0; i < perSite; i++ {
				h, err := sess.SubmitAsync("incr")
				if err != nil {
					t.Errorf("site %d: %v", site, err)
					return
				}
				handles = append(handles, h)
			}
			for i, h := range handles {
				if _, err := h.Result(); err != nil {
					t.Errorf("site %d handle %d: %v", site, i, err)
					return
				}
			}
		}(site, sess)
	}
	wg.Wait()
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := c.WaitForCommits(wctx, 3*perSite); err != nil {
		t.Fatal(err)
	}
	v, _, err := c.Read(0, "counter", "n")
	if err != nil {
		t.Fatal(err)
	}
	if otpdb.AsInt64(v) != 3*perSite {
		t.Fatalf("final counter = %d, want %d", otpdb.AsInt64(v), 3*perSite)
	}
	if err := c.CheckHistory(); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Converged(); err != nil || !ok {
		t.Fatalf("converged = %v, %v", ok, err)
	}
}
