package otpdb_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"otpdb"
)

// accountsCluster registers a small banking schema on a fresh cluster.
func accountsCluster(t *testing.T, opts ...otpdb.Option) *otpdb.Cluster {
	t.Helper()
	c, err := otpdb.NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	c.MustRegisterUpdate(otpdb.Update{
		Name:  "credit",
		Class: "accounts",
		Fn: func(ctx otpdb.UpdateCtx) (otpdb.Value, error) {
			acct := otpdb.Key(otpdb.AsString(ctx.Args()[0]))
			amount := otpdb.AsInt64(ctx.Args()[1])
			v, _ := ctx.Read(acct)
			next := otpdb.Int64(otpdb.AsInt64(v) + amount)
			return next, ctx.Write(acct, next)
		},
	})
	c.MustRegisterQuery(otpdb.Query{
		Name: "balance",
		Fn: func(ctx otpdb.QueryCtx) (otpdb.Value, error) {
			v, _ := ctx.Read("accounts", otpdb.Key(otpdb.AsString(ctx.Args()[0])))
			return v, nil
		},
	})
	t.Cleanup(c.Stop)
	return c
}

func TestClusterLifecycle(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(3))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); !errors.Is(err, otpdb.ErrStarted) {
		t.Fatalf("second Start = %v", err)
	}
	if c.Size() != 3 {
		t.Fatalf("Size = %d", c.Size())
	}
	c.Stop()
	c.Stop() // idempotent
}

func TestExecAndReadBack(t *testing.T) {
	c := accountsCluster(t)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Exec(ctx, 0, "credit", otpdb.String("alice"), otpdb.Int64(100)); err != nil {
		t.Fatal(err)
	}
	v, err := c.QueryAt(ctx, 0, "balance", otpdb.String("alice"))
	if err != nil {
		t.Fatal(err)
	}
	if otpdb.AsInt64(v) != 100 {
		t.Fatalf("balance = %d", otpdb.AsInt64(v))
	}
}

func TestAllReplicasConverge(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(3), otpdb.WithHistoryRecording(),
		otpdb.WithNetworkJitter(time.Millisecond))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	const perSite = 10
	for site := 0; site < 3; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			for i := 0; i < perSite; i++ {
				acct := fmt.Sprintf("acct%d", i%2)
				if err := c.Exec(ctx, site, "credit", otpdb.String(acct), otpdb.Int64(1)); err != nil {
					t.Errorf("site %d: %v", site, err)
					return
				}
			}
		}(site)
	}
	wg.Wait()
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := c.WaitForCommits(wctx, 3*perSite); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Converged()
	if err != nil || !ok {
		t.Fatalf("converged = %v, %v", ok, err)
	}
	if err := c.CheckHistory(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Each account credited 3*perSite/2 times at every site.
	for site := 0; site < 3; site++ {
		for a := 0; a < 2; a++ {
			v, okRead, err := c.Read(site, "accounts", otpdb.Key(fmt.Sprintf("acct%d", a)))
			if err != nil || !okRead {
				t.Fatal(err)
			}
			if otpdb.AsInt64(v) != 3*perSite/2 {
				t.Fatalf("site %d acct%d = %d", site, a, otpdb.AsInt64(v))
			}
		}
	}
}

func TestConservativeOrderingWorksToo(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(2), otpdb.WithOrdering(otpdb.ConservativeOrdering))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := c.Exec(ctx, i%2, "credit", otpdb.String("x"), otpdb.Int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := c.WaitForCommits(wctx, 5); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Converged()
	if err != nil || !ok {
		t.Fatalf("converged = %v, %v", ok, err)
	}
}

func TestSeedLoadsInitialState(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(2))
	if err := c.Seed("accounts", "alice", otpdb.Int64(500)); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	for site := 0; site < 2; site++ {
		v, ok, err := c.Read(site, "accounts", "alice")
		if err != nil || !ok || otpdb.AsInt64(v) != 500 {
			t.Fatalf("site %d: %v %v %v", site, otpdb.AsInt64(v), ok, err)
		}
	}
	if err := c.Seed("accounts", "late", nil); !errors.Is(err, otpdb.ErrStarted) {
		t.Fatalf("late seed = %v", err)
	}
}

func TestRegistrationAfterStartRejected(t *testing.T) {
	c := accountsCluster(t)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	err := c.RegisterUpdate(otpdb.Update{Name: "late", Class: "c", Fn: func(otpdb.UpdateCtx) (otpdb.Value, error) { return nil, nil }})
	if !errors.Is(err, otpdb.ErrStarted) {
		t.Fatalf("err = %v", err)
	}
	if err := c.RegisterQuery(otpdb.Query{Name: "lateq", Fn: func(otpdb.QueryCtx) (otpdb.Value, error) { return nil, nil }}); !errors.Is(err, otpdb.ErrStarted) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadSiteErrors(t *testing.T) {
	c := accountsCluster(t, otpdb.WithReplicas(2))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Exec(ctx, 9, "credit", otpdb.String("a"), otpdb.Int64(1)); !errors.Is(err, otpdb.ErrBadSite) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.QueryAt(ctx, -1, "balance", otpdb.String("a")); !errors.Is(err, otpdb.ErrBadSite) {
		t.Fatalf("err = %v", err)
	}
}

func TestNotStartedErrors(t *testing.T) {
	c := accountsCluster(t)
	ctx := context.Background()
	if err := c.Exec(ctx, 0, "credit"); !errors.Is(err, otpdb.ErrNotStarted) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Converged(); !errors.Is(err, otpdb.ErrNotStarted) {
		t.Fatalf("err = %v", err)
	}
}

func TestSiteStatsExposesCounters(t *testing.T) {
	c := accountsCluster(t)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Exec(ctx, 0, "credit", otpdb.String("a"), otpdb.Int64(1)); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := c.WaitForCommits(wctx, 1); err != nil {
		t.Fatal(err)
	}
	st, err := c.SiteStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Commits != 1 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCheckHistoryRequiresOption(t *testing.T) {
	c := accountsCluster(t)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckHistory(); err == nil {
		t.Fatal("CheckHistory without recording succeeded")
	}
}

func TestValueHelpersRoundTrip(t *testing.T) {
	if otpdb.AsInt64(otpdb.Int64(-7)) != -7 {
		t.Fatal("int64 round trip")
	}
	if otpdb.AsString(otpdb.String("hello")) != "hello" {
		t.Fatal("string round trip")
	}
}
