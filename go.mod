module otpdb

go 1.24
