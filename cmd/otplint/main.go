// Command otplint runs the repo's invariant analyzers (internal/lint)
// over the packages matching its arguments and exits non-zero if any
// diagnostic survives suppression. It is the CI lint gate:
//
//	go run ./cmd/otplint ./...
//
// Flags:
//
//	-only a,b   run only the named analyzers
//	-list       print the analyzer catalog and exit
//
// Suppress a finding with a justified allow comment on the flagged
// line or the line above:
//
//	//otplint:allow <analyzer> <justification>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"otpdb/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var picked []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "otplint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "otplint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "otplint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "otplint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "otplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
