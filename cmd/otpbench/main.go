// Command otpbench regenerates the paper's figure and the quantitative
// claims of Kemme et al. (ICDCS'99) as plain-text tables. See DESIGN.md
// §4 for the experiment index.
//
// Usage:
//
//	otpbench [-quick] [-json] [-out file] [experiment ...]
//	otpbench [-quick] chaos [-seed S] [-v] [-dump dir] [scenario ...]
//
// Experiments: figure1, abortrate, overlap, async, queries, ordering,
// pipeline, commit, recovery, rejoin, reconfig, shard, chaos. With no
// arguments every experiment runs.
//
// The chaos experiment is the E13 fault-injection matrix: every shipped
// scenario of internal/chaos runs at -seed (identical seeds replay
// identical fault schedules), reporting pass/fail per scenario against
// the invariants (digest convergence, no lost acked commit, effect-once,
// epoch monotonicity). A failing scenario makes otpbench exit nonzero.
// Arguments after "chaos" belong to it: -seed, -v (stream the fault
// schedule as it executes), -dump (directory receiving a
// flight-recorder dump per failed scenario — what the nightly chaos
// job uploads as its failure artifact) and an optional list of
// scenario names.
//
// The commit experiment is the tracked commit-path benchmark: with
// -json it also writes its report (throughput and p50/p99 commit
// latency for the end-to-end, pipeline and snapshot-read workloads) to
// BENCH_commit.json (or -out), the perf trajectory every performance PR
// regenerates and must not regress.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"otpdb/internal/chaos"
	"otpdb/internal/experiments"
	"otpdb/internal/netsim"
)

func main() {
	quick := flag.Bool("quick", false, "smaller parameter sweeps (seconds instead of minutes)")
	jsonOut := flag.Bool("json", false, "write the commit benchmark report to -out as JSON")
	outPath := flag.String("out", "BENCH_commit.json", "output path for the -json report")
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		// "recovery", "rejoin", "reconfig" and "shard" are not listed:
		// the commit benchmark already embeds the full E9–E12 sweeps in
		// its report, and running them twice would double the slowest
		// cells of the suite. All remain available as explicit targets.
		targets = []string{"figure1", "abortrate", "overlap", "async", "queries", "ordering", "pipeline", "commit"}
	}
	if err := run(targets, *quick, *jsonOut, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "otpbench:", err)
		os.Exit(1)
	}
}

func run(targets []string, quick, jsonOut bool, outPath string) error {
	for i, target := range targets {
		switch target {
		case "chaos":
			// Everything after "chaos" is its own argument list.
			return runChaos(targets[i+1:], quick)
		case "figure1":
			p := experiments.DefaultFigure1Params()
			if quick {
				p.PerSite = 150
				p.Intervals = []time.Duration{
					100 * time.Microsecond, 500 * time.Microsecond,
					1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
				}
			}
			t := experiments.Figure1(p)
			t.Render(os.Stdout)
		case "abortrate":
			p := experiments.DefaultAbortRateParams()
			if quick {
				p.Txns = 500
			}
			t := experiments.AbortRate(p)
			t.Render(os.Stdout)
		case "overlap":
			p := experiments.DefaultOverlapParams()
			if quick {
				p.Txns = 15
			}
			t, err := experiments.Overlap(p)
			if err != nil {
				return fmt.Errorf("overlap: %w", err)
			}
			t.Render(os.Stdout)
		case "async":
			p := experiments.DefaultVsAsyncParams()
			if quick {
				p.IncrementsPerSite = 25
			}
			t, err := experiments.VsAsync(p)
			if err != nil {
				return fmt.Errorf("async: %w", err)
			}
			t.Render(os.Stdout)
		case "queries":
			p := experiments.DefaultQueriesParams()
			if quick {
				p.TransfersPerSite = 50
				p.Queries = 20
			}
			t, err := experiments.Queries(p)
			if err != nil {
				return fmt.Errorf("queries: %w", err)
			}
			t.Render(os.Stdout)
		case "ordering":
			p := experiments.DefaultOrderingParams()
			if quick {
				p.Messages = 25
			}
			t, err := experiments.Ordering(p)
			if err != nil {
				return fmt.Errorf("ordering: %w", err)
			}
			t.Render(os.Stdout)
		case "pipeline":
			p := experiments.DefaultPipelineParams()
			if quick {
				p.Txns = 300
				p.Depths = []int{1, 8, 32}
			}
			t, err := experiments.Pipeline(p)
			if err != nil {
				return fmt.Errorf("pipeline: %w", err)
			}
			t.Render(os.Stdout)
		case "commit":
			p := experiments.DefaultCommitBenchParams()
			if quick {
				p = experiments.QuickCommitBenchParams()
			}
			rep, err := experiments.CommitBench(p, quick)
			if err != nil {
				return fmt.Errorf("commit: %w", err)
			}
			t := rep.Table()
			t.Render(os.Stdout)
			if jsonOut {
				data, err := rep.JSON()
				if err != nil {
					return fmt.Errorf("commit: %w", err)
				}
				if err := os.WriteFile(outPath, data, 0o644); err != nil {
					return fmt.Errorf("commit: %w", err)
				}
				fmt.Printf("wrote %s\n", outPath)
			}
		case "recovery":
			p := experiments.DefaultRecoveryParams()
			if quick {
				p = experiments.QuickRecoveryParams()
			}
			rep, err := experiments.RecoveryBench(p)
			if err != nil {
				return fmt.Errorf("recovery: %w", err)
			}
			t := rep.Table()
			t.Render(os.Stdout)
		case "rejoin":
			p := experiments.DefaultRejoinParams()
			if quick {
				p = experiments.QuickRejoinParams()
			}
			rep, err := experiments.RejoinBench(p)
			if err != nil {
				return fmt.Errorf("rejoin: %w", err)
			}
			t := rep.Table()
			t.Render(os.Stdout)
		case "reconfig":
			p := experiments.DefaultReconfigParams()
			if quick {
				p = experiments.QuickReconfigParams()
			}
			rep, err := experiments.ReconfigBench(p)
			if err != nil {
				return fmt.Errorf("reconfig: %w", err)
			}
			t := rep.Table()
			t.Render(os.Stdout)
		case "shard":
			p := experiments.DefaultShardBenchParams()
			if quick {
				p = experiments.QuickShardBenchParams()
			}
			rep, err := experiments.ShardBench(p)
			if err != nil {
				return fmt.Errorf("shard: %w", err)
			}
			t := rep.Table()
			t.Render(os.Stdout)
		case "calibrate":
			// Hidden helper: print the raw Figure 1 model curve densely.
			pts := netsim.Figure1Curve(4, 400, netsim.DefaultFigure1Intervals(), 42)
			for _, pt := range pts {
				fmt.Printf("%8v  %6.2f%%\n", pt.Interval, pt.Percent)
			}
		default:
			return fmt.Errorf("unknown experiment %q", target)
		}
	}
	return nil
}

// runChaos is the E13 matrix as a standalone target: pass/fail per
// scenario, nonzero exit on any violation.
func runChaos(args []string, quick bool) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "fault-schedule seed (identical seeds replay identical schedules)")
	verbose := fs.Bool("v", false, "stream scenario progress and print each fault schedule")
	dumpDir := fs.String("dump", "", "directory receiving a flight-recorder dump per failed scenario")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := experiments.ChaosBenchParams{Seed: *seed, Quick: quick, DumpDir: *dumpDir}
	if *verbose {
		p.Out = os.Stdout
	}
	names := fs.Args()
	if len(names) > 0 {
		// A named subset: run exactly these, full-mode definitions.
		var rep experiments.ChaosReport
		rep.Seed = *seed
		rep.ByClass = make(map[string]experiments.ChaosClassStat)
		for _, name := range names {
			sc, ok := chaos.Find(name)
			if !ok {
				return fmt.Errorf("chaos: unknown scenario %q", name)
			}
			res, err := chaos.Run(sc, *seed, chaos.Options{Out: p.Out, DumpDir: *dumpDir})
			if err != nil {
				return fmt.Errorf("chaos %s: %w", name, err)
			}
			if *verbose {
				fmt.Printf("schedule for %s seed=%d:\n%s", name, *seed, res.ScheduleText)
			}
			rep.Scenarios = append(rep.Scenarios, *res)
		}
		t := rep.Table()
		t.Render(os.Stdout)
		if n := rep.Failures(); n > 0 {
			return fmt.Errorf("chaos: %d scenario(s) failed their invariants", n)
		}
		return nil
	}
	rep, err := experiments.ChaosBench(p)
	if err != nil {
		return err
	}
	t := rep.Table()
	t.Render(os.Stdout)
	if n := rep.Failures(); n > 0 {
		return fmt.Errorf("chaos: %d scenario(s) failed their invariants", n)
	}
	return nil
}
