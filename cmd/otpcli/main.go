// Command otpcli sends one command to an otpd replica and prints the
// reply. See cmd/otpd for the protocol and an example cluster.
//
//	otpcli -addr :7070 EXEC add-p0 mykey 5
//	otpcli -addr :7071 QUERY get p0 mykey
//	otpcli -addr :7072 STATS
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", ":7070", "otpd client address")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: otpcli [-addr host:port] COMMAND [args...]")
		os.Exit(2)
	}
	if err := run(*addr, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "otpcli:", err)
		os.Exit(1)
	}
}

func run(addr string, args []string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	if _, err := fmt.Fprintln(conn, strings.Join(args, " ")); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		return fmt.Errorf("no reply: %v", sc.Err())
	}
	fmt.Println(sc.Text())
	return nil
}
