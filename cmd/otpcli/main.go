// Command otpcli talks to an otpd replica and prints the replies. See
// cmd/otpd for the protocol and an example cluster.
//
// One-shot mode sends a single command:
//
//	otpcli -addr :7070 EXEC add-p0 mykey 5
//	otpcli -addr :7071 QUERY get p0 mykey
//	otpcli -addr :7072 STATS
//
// STATUS is the operator's convenience view: the same counters as
// STATS, rendered one per line — including the replica's definitive
// index (to), its locally recovered index, and its current role
// (joining while a state transfer catches it up, serving, or donor
// while it streams state to another joiner):
//
//	$ otpcli -addr :7072 STATUS
//	commits:   1042
//	...
//	role:      serving
//
// METRICS pretty-prints the replica's metrics registry grouped by family
// (use the raw protocol via -stdin for machine consumption), and
// TRACE <id> renders a transaction's lifecycle spans — stitched
// cluster-wide by the server when given a trace ID like tx0.1.7 — as a
// waterfall, with the optimistic window (opt-deliver → to-deliver gap)
// called out per shard:
//
//	$ otpcli -addr :7070 METRICS
//	otp_commits_total
//	  {shard=0,site=0}             1042
//	...
//
//	$ otpcli -addr :7070 TRACE tx0.1.7
//	TRACE tx0.1.7 n=7 — 7 spans, 3 site(s), 4.312ms total
//	   0.000ms  █···  site 0 shard -1  x-submit     x0.1.7
//	   0.412ms  ··█·  site 1 shard 1   opt-deliver  m1.0.9
//	   3.907ms  ···█  site 1 shard 1   to-deliver   m1.0.9  (opt→def 3.495ms)
//	...
//
// Use -stdin to get the raw JSON span lines instead of the waterfall.
//
// Pipelined mode (-stdin) keeps one connection open and sends every line
// read from standard input, printing one reply per line. Because SUBMIT
// handles are per-connection, this is how WAIT is used — and how many
// transactions are kept in flight at once:
//
//	printf 'SUBMIT add-p0 k 1\nSUBMIT add-p0 k 2\nWAIT 0.1\nWAIT 0.2\n' \
//	    | otpcli -addr :7070 -stdin
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", ":7070", "otpd client address")
	stdin := flag.Bool("stdin", false, "read newline-separated commands from stdin over one connection")
	flag.Parse()
	if !*stdin && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: otpcli [-addr host:port] COMMAND [args...]")
		fmt.Fprintln(os.Stderr, "       otpcli [-addr host:port] -stdin < commands.txt")
		os.Exit(2)
	}
	var err error
	if *stdin {
		err = runStdin(*addr)
	} else {
		err = run(*addr, flag.Args())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "otpcli:", err)
		os.Exit(1)
	}
}

func run(addr string, args []string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	if _, err := fmt.Fprintln(conn, strings.Join(args, " ")); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		return fmt.Errorf("no reply: %v", sc.Err())
	}
	if len(args) > 0 && (strings.EqualFold(args[0], "STATUS") || strings.EqualFold(args[0], "STATS")) {
		// A sharded replica replies with a summary line announcing
		// shards=N followed by one SHARD line per group; collect them all.
		lines := []string{sc.Text()}
		for i := shardCount(sc.Text()); i > 0 && sc.Scan(); i-- {
			lines = append(lines, sc.Text())
		}
		if strings.EqualFold(args[0], "STATUS") {
			printStatus(lines)
		} else {
			fmt.Println(strings.Join(lines, "\n"))
		}
		return nil
	}
	if len(args) > 0 && (strings.EqualFold(args[0], "METRICS") || strings.EqualFold(args[0], "TRACE")) {
		// Multi-line replies: the first line announces n=<count>
		// continuation lines (series or JSON spans); collect them all.
		lines := []string{sc.Text()}
		for i := lineCount(sc.Text()); i > 0 && sc.Scan(); i-- {
			lines = append(lines, sc.Text())
		}
		if strings.EqualFold(args[0], "METRICS") {
			printMetrics(lines)
		} else {
			printTrace(lines)
		}
		return nil
	}
	fmt.Println(sc.Text())
	return nil
}

// lineCount extracts n=N from a METRICS/TRACE header line (0 when the
// reply is an ERR or an older server's).
func lineCount(reply string) int {
	for _, f := range strings.Fields(reply) {
		if v, ok := strings.CutPrefix(f, "n="); ok {
			var n int
			if _, err := fmt.Sscanf(v, "%d", &n); err == nil {
				return n
			}
		}
	}
	return 0
}

// printMetrics pretty-prints a METRICS reply: series grouped by family
// name, label sets and readings aligned under each. Anything unexpected
// is printed verbatim.
func printMetrics(lines []string) {
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "METRICS") {
		fmt.Println(strings.Join(lines, "\n"))
		return
	}
	lastFamily := ""
	for _, line := range lines[1:] {
		name, rest, _ := strings.Cut(line, " ")
		family := name
		labels := ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			family, labels = name[:i], name[i:]
		}
		if family != lastFamily {
			lastFamily = family
			fmt.Println(family)
		}
		if labels == "" {
			labels = "{}"
		}
		fmt.Printf("  %-28s %s\n", labels, rest)
	}
}

// traceSpan mirrors the span JSON otpd emits on TRACE continuation
// lines (internal/metrics.TraceEvent).
type traceSpan struct {
	Txn   string    `json:"txn"`
	Trace string    `json:"trace"`
	Span  string    `json:"span"`
	Site  int       `json:"site"`
	Shard int       `json:"shard"`
	At    time.Time `json:"at"`
	Note  string    `json:"note"`
}

// printTrace renders a TRACE reply as a waterfall: one line per span in
// causal order, offset from the first span, with a proportional-position
// marker column so the shape of the transaction (where the time went) is
// visible at a glance. The optimistic window — the gap between a shard's
// first opt-deliver and its to-deliver — is called out inline, because
// that gap is the whole point of OPT-ABcast: work done inside it is free
// when the orders agree and wasted when they do not. Anything unexpected
// (an ERR, an older server) is printed verbatim; use -stdin for the raw
// JSON lines.
func printTrace(lines []string) {
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "TRACE") {
		fmt.Println(strings.Join(lines, "\n"))
		return
	}
	spans := make([]traceSpan, 0, len(lines)-1)
	for _, line := range lines[1:] {
		var s traceSpan
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			fmt.Println(strings.Join(lines, "\n"))
			return
		}
		spans = append(spans, s)
	}
	t0, tN := spans[0].At, spans[0].At
	sites := map[int]bool{}
	title := spans[0].Txn
	for _, s := range spans {
		if s.At.Before(t0) {
			t0 = s.At
		}
		if s.At.After(tN) {
			tN = s.At
		}
		sites[s.Site] = true
		if s.Trace != "" {
			title = s.Trace
		}
	}
	fmt.Printf("%s — %d spans, %d site(s), %s total\n",
		title, len(spans), len(sites), fmtDur(tN.Sub(t0)))

	// The optimistic window per shard: first opt-deliver to the
	// definitive to-deliver that settled it.
	optAt := map[int]time.Time{}
	for _, s := range spans {
		if s.Span == "opt-deliver" {
			if at, ok := optAt[s.Shard]; !ok || s.At.Before(at) {
				optAt[s.Shard] = s.At
			}
		}
	}
	const width = 24
	span := tN.Sub(t0)
	for _, s := range spans {
		off := s.At.Sub(t0)
		pos := 0
		if span > 0 {
			pos = int(off * (width - 1) / span)
		}
		bar := strings.Repeat("·", pos) + "█" + strings.Repeat(" ", width-1-pos)
		note := s.Note
		if s.Span == "to-deliver" {
			if at, ok := optAt[s.Shard]; ok && s.At.After(at) {
				gap := fmt.Sprintf("opt→def %s", fmtDur(s.At.Sub(at)))
				if note != "" {
					note += "  " + gap
				} else {
					note = gap
				}
			}
		}
		line := fmt.Sprintf("%10s  %s  site %d shard %d  %-12s %s",
			fmtDur(off), bar, s.Site, s.Shard, s.Span, s.Txn)
		if note != "" {
			line += "  (" + note + ")"
		}
		fmt.Println(strings.TrimRight(line, " "))
	}
}

// fmtDur renders a duration in fixed sub-millisecond precision, the
// scale opt→def gaps live at.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}

// shardCount extracts shards=N from a STATS summary line (0 when absent,
// i.e. a single-shard replica's one-line reply).
func shardCount(reply string) int {
	for _, f := range strings.Fields(reply) {
		if v, ok := strings.CutPrefix(f, "shards="); ok {
			var n int
			if _, err := fmt.Sscanf(v, "%d", &n); err == nil {
				return n
			}
		}
	}
	return 0
}

// printStatus renders a STATS reply one field per line; in sharded mode
// each shard's counters follow, indented under a "shard <id>:" header.
// Anything unexpected (an ERR, an older server) is printed verbatim.
func printStatus(lines []string) {
	fields := strings.Fields(lines[0])
	if len(fields) < 2 || fields[0] != "STATS" {
		fmt.Println(strings.Join(lines, "\n"))
		return
	}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			fmt.Println(f)
			continue
		}
		fmt.Printf("%-10s %s\n", k+":", v)
	}
	for _, line := range lines[1:] {
		sf := strings.Fields(line)
		if len(sf) < 2 || sf[0] != "SHARD" {
			fmt.Println(line)
			continue
		}
		if id, ok := strings.CutPrefix(sf[1], "id="); ok {
			fmt.Printf("shard %s:\n", id)
			sf = sf[2:]
		} else {
			fmt.Println("shard:")
			sf = sf[1:]
		}
		for _, f := range sf {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				fmt.Printf("  %s\n", f)
				continue
			}
			fmt.Printf("  %-10s %s\n", k+":", v)
		}
	}
}

// runStdin streams commands from stdin over one connection and prints
// each reply. Commands are sent as they are read (a goroutine keeps the
// pipe full while replies are consumed), and the write side is closed at
// EOF so the server hangs up once every reply is out.
func runStdin(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	sendErr := make(chan error, 1)
	sendDone := make(chan struct{})
	go func() {
		defer close(sendDone) // sendErr is always populated first
		in := bufio.NewScanner(os.Stdin)
		for in.Scan() {
			line := strings.TrimSpace(in.Text())
			if line == "" {
				continue
			}
			if _, err := fmt.Fprintln(conn, line); err != nil {
				sendErr <- err
				return
			}
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		sendErr <- in.Err()
	}()
	replies := bufio.NewScanner(conn)
	for replies.Scan() {
		fmt.Println(replies.Text())
	}
	// Don't block on the sender: if the server hung up mid-session the
	// sender may still be parked reading stdin.
	select {
	case <-sendDone:
		if err := <-sendErr; err != nil {
			return err
		}
		return replies.Err()
	default:
		return fmt.Errorf("connection closed by server: %v", replies.Err())
	}
}
