package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"otpdb/internal/testutil"
)

// TestReplaceSiteTCP is the membership torture test: a 3-process TCP
// cluster loses one replica to SIGKILL for good (its data directory is
// gone too — a dead machine), the survivors commit a MEMBER REPLACE to a
// new address while still serving traffic, and a fresh process at that
// address joins through statex, converges, and serves. A subsequent
// MEMBER REMOVE shrinks the group to two and the survivors keep
// committing under the smaller quorum.
func TestReplaceSiteTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "otpd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const n = 3
	peerAddrs := make([]string, n)
	clientAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		peerAddrs[i] = freeAddr(t)
		clientAddrs[i] = freeAddr(t)
	}
	start := func(i int, peers, dataDir string, join bool) *exec.Cmd {
		args := []string{
			"-id", fmt.Sprint(i),
			"-peers", peers,
			"-client", clientAddrs[i],
			"-data", dataDir,
			"-fsync", "commit",
		}
		if join {
			args = append(args, "-join")
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start otpd %d: %v", i, err)
		}
		return cmd
	}

	peers := strings.Join(peerAddrs, ",")
	procs := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		procs[i] = start(i, peers, filepath.Join(tmp, fmt.Sprintf("data-%d", i)), false)
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				_ = p.Process.Kill()
			}
		}
	}()

	conn0 := dialRetry(t, clientAddrs[0])
	defer func() { _ = conn0.Close() }()
	conn1 := dialRetry(t, clientAddrs[1])
	defer func() { _ = conn1.Close() }()

	// Phase 1: load with all three up.
	const phase1 = 20
	for i := 0; i < phase1; i++ {
		execAdd(t, conn0, "k", 1)
	}
	if e := statField(t, roundTrip(t, conn0, "STATS"), "epoch"); e != 1 {
		t.Fatalf("initial epoch = %d, want 1", e)
	}

	// Replica 2's machine dies permanently: kill -9, and its durable
	// state never comes back.
	victim := 2
	if err := procs[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_, _ = procs[victim].Process.Wait()
	procs[victim] = nil

	// Survivors keep serving while the replacement is arranged.
	const phase2 = 20
	for i := 0; i < phase2; i++ {
		execAdd(t, conn0, "k", 1)
	}

	// Commit the replacement: same id, new peer address, fresh machine.
	newPeerAddr := freeAddr(t)
	clientAddrs[victim] = freeAddr(t)
	reply := roundTrip(t, conn0, fmt.Sprintf("MEMBER REPLACE %d %s", victim, newPeerAddr))
	if !strings.HasPrefix(reply, "OK epoch=2") {
		t.Fatalf("MEMBER REPLACE reply: %q", reply)
	}
	// Survivors are serving EXEC/QUERY throughout the change.
	if got := execAdd(t, conn1, "k", 1); got != phase1+phase2+1 {
		t.Fatalf("survivor commit during change = %d, want %d", got, phase1+phase2+1)
	}

	// Start the replacement: updated peers list, empty data dir, -join.
	newPeers := strings.Join([]string{peerAddrs[0], peerAddrs[1], newPeerAddr}, ",")
	procs[victim] = start(victim, newPeers, filepath.Join(tmp, "data-2-replacement"), true)
	conn2 := dialRetry(t, clientAddrs[victim])
	defer func() { _ = conn2.Close() }()
	waitServing(t, conn2, 120*time.Second)
	// role=serving can precede the backlog replay reaching the
	// membership change; poll until the replacement applies it.
	waitStats(t, conn2, 120*time.Second, map[string]int64{"epoch": 2, "members": 3})

	// The replacement serves reads and writes in agreement.
	want := int64(phase1 + phase2 + 2)
	if got := execAdd(t, conn2, "k", 1); got != want {
		t.Fatalf("post-replace commit at replacement = %d, want %d", got, want)
	}
	if got := queryGet(t, conn2, "p0", "k"); got != want {
		t.Fatalf("post-replace query at replacement = %d, want %d", got, want)
	}

	// All three converge to one digest and one epoch.
	waitDigestsEqual(t, 120*time.Second, conn0, conn1, conn2)
	for _, c := range []net.Conn{conn0, conn1, conn2} {
		if e := statField(t, roundTrip(t, c, "STATS"), "epoch"); e != 2 {
			t.Fatalf("epoch after replace = %d, want 2", e)
		}
	}

	// Shrink: vote the replacement out again; the two survivors commit
	// under the two-member quorum.
	reply = roundTrip(t, conn0, fmt.Sprintf("MEMBER REMOVE %d", victim))
	if !strings.HasPrefix(reply, "OK epoch=3 members=2") {
		t.Fatalf("MEMBER REMOVE reply: %q", reply)
	}
	if procs[victim].Process != nil {
		_ = procs[victim].Process.Kill()
		_, _ = procs[victim].Process.Wait()
		procs[victim] = nil
	}
	if got := execAdd(t, conn0, "k", 1); got != want+1 {
		t.Fatalf("commit after shrink = %d, want %d", got, want+1)
	}
	waitStats(t, conn1, 60*time.Second, map[string]int64{"epoch": 3, "members": 2})
	waitDigestsEqual(t, 60*time.Second, conn0, conn1)
}

// waitStats waits until STATS reports every wanted field value.
func waitStats(t *testing.T, conn net.Conn, timeout time.Duration, want map[string]int64) {
	t.Helper()
	var s string
	testutil.EventuallyOr(t, timeout, fmt.Sprintf("STATS to reach %v", want), func() bool {
		s = roundTrip(t, conn, "STATS")
		for k, v := range want {
			if statField(t, s, k) != v {
				return false
			}
		}
		return true
	}, func() {
		t.Logf("last STATS: %q", s)
	})
}

// waitDigestsEqual waits until DIGEST agrees across the connections.
func waitDigestsEqual(t *testing.T, timeout time.Duration, conns ...net.Conn) {
	t.Helper()
	digests := make([]string, len(conns))
	testutil.EventuallyOr(t, timeout, "digests to converge", func() bool {
		for i, c := range conns {
			digests[i] = digest(t, c)
		}
		for _, d := range digests {
			if d != digests[0] {
				return false
			}
		}
		return true
	}, func() {
		t.Logf("last digests: %v", digests)
	})
}
