package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"otpdb/internal/testutil"
)

// TestKill9Recovery is the acceptance test for process-crash durability:
// a real otpd process is driven over its TCP client protocol, killed
// with SIGKILL mid-load, restarted on the same data directory, and must
// recover every acknowledged commit and keep committing.
func TestKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "otpd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	peerAddr := freeAddr(t)
	clientAddr := freeAddr(t)
	dataDir := filepath.Join(tmp, "data")
	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-id", "0",
			"-peers", peerAddr,
			"-client", clientAddr,
			"-data", dataDir,
			"-fsync", "commit",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start otpd: %v", err)
		}
		return cmd
	}

	proc := start()
	defer func() { _ = proc.Process.Kill() }()
	conn := dialRetry(t, clientAddr)

	// Phase 1: synchronous committed load — every OK reply is an
	// acknowledged (and, under -fsync commit, durable) transaction.
	const acked = 40
	var lastVal int64
	for i := 0; i < acked; i++ {
		lastVal = execAdd(t, conn, "k", 1)
	}
	if lastVal != acked {
		t.Fatalf("counter after %d acked commits = %d", acked, lastVal)
	}
	// Phase 2: fire-and-forget load so transactions are genuinely in
	// flight when the process dies (their fate is unconstrained).
	for i := 0; i < 10; i++ {
		fmt.Fprintf(conn, "SUBMIT add-p0 k 1\n")
	}

	// Kill -9 mid-load and restart on the same directory.
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = proc.Wait()
	_ = conn.Close()

	proc2 := start()
	defer func() { _ = proc2.Process.Kill() }()
	conn2 := dialRetry(t, clientAddr)
	defer func() { _ = conn2.Close() }()

	recovered := queryGet(t, conn2, "p0", "k")
	if recovered < acked || recovered > acked+10 {
		t.Fatalf("recovered counter = %d, want >= %d (acked) and <= %d", recovered, acked, acked+10)
	}
	// The restarted replica keeps committing, continuing from the
	// recovered state.
	if got := execAdd(t, conn2, "k", 1); got != recovered+1 {
		t.Fatalf("post-restart commit = %d, want %d", got, recovered+1)
	}
}

// freeAddr grabs an ephemeral 127.0.0.1 port.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// dialRetry connects to the otpd client port, retrying while the
// process boots (and, after a restart, recovers).
func dialRetry(t *testing.T, addr string) net.Conn {
	t.Helper()
	var conn net.Conn
	var err error
	testutil.EventuallyOr(t, 30*time.Second, "otpd to accept on "+addr, func() bool {
		conn, err = net.DialTimeout("tcp", addr, time.Second)
		return err == nil
	}, func() {
		t.Logf("dial %s: %v", addr, err)
	})
	return conn
}

// execAdd runs EXEC add-p0 <key> <delta> and returns the new value.
func execAdd(t *testing.T, conn net.Conn, key string, delta int) int64 {
	t.Helper()
	reply := roundTrip(t, conn, fmt.Sprintf("EXEC add-p0 %s %d", key, delta))
	if !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("EXEC reply: %q", reply)
	}
	for _, field := range strings.Fields(reply) {
		if v, ok := strings.CutPrefix(field, "value="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Fatalf("EXEC value %q: %v", v, err)
			}
			return n
		}
	}
	t.Fatalf("EXEC reply without value: %q", reply)
	return 0
}

// queryGet runs QUERY get <class> <key> and returns the value.
func queryGet(t *testing.T, conn net.Conn, class, key string) int64 {
	t.Helper()
	reply := roundTrip(t, conn, fmt.Sprintf("QUERY get %s %s", class, key))
	val, ok := strings.CutPrefix(reply, "VALUE ")
	if !ok {
		t.Fatalf("QUERY reply: %q", reply)
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		t.Fatalf("QUERY value %q: %v", val, err)
	}
	return n
}

// roundTrip sends one protocol line and reads one reply line.
func roundTrip(t *testing.T, conn net.Conn, line string) string {
	t.Helper()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		t.Fatalf("send %q: %v", line, err)
	}
	r := bufio.NewReader(conn)
	reply, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("read reply to %q: %v", line, err)
	}
	return strings.TrimSpace(reply)
}
