// Command otpd runs one replica of the replicated database over TCP — the
// multi-process deployment of the paper's architecture. Every replica
// serves a small line protocol for clients (see cmd/otpcli), the TCP
// incarnation of the in-process Session API: EXEC is Session.Exec with
// its typed result, SUBMIT/WAIT are Session.SubmitAsync plus Handle
// resolution, so clients pipeline many transactions per connection.
//
//	EXEC <procedure> [arg ...]   -> OK value=<int64> to=<idx> outcome=<fastpath|reordered|retried> latency=<dur>
//	                              | ERR <message>
//	SUBMIT <procedure> [arg ...] -> ID <origin>.<seq> | ERR <message>
//	WAIT <origin>.<seq>          -> OK ... (as EXEC) | ERR <message>
//	QUERY <procedure> [arg ...]  -> VALUE <int64> | ERR <message>
//	STATS                        -> STATS commits=<n> aborts=<n> reorders=<n> pending=<n>
//	DIGEST                       -> DIGEST <hex>
//
// SUBMIT handles are per-connection: WAIT resolves an ID submitted on the
// same connection (pipeline SUBMITs first, then WAIT each ID).
//
// The demo schema partitions an integer keyspace into -classes conflict
// classes with procedures add-p<i>(key, delta) — returning the key's new
// value — and the cross-class query get(p<i>, key).
//
// With -data the replica is durable: definitive commits are written
// ahead to a segmented CRC-framed log (fsync policy -fsync
// commit|group|off) with periodic checkpoints, the WAL is flushed and
// closed on SIGINT/SIGTERM, and a restarted process — even after kill
// -9 — recovers its committed state and resumes at the recovered
// definitive index.
//
// Example 3-replica cluster on one machine:
//
//	otpd -id 0 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 -client :7070 &
//	otpd -id 1 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 -client :7071 &
//	otpd -id 2 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 -client :7072 &
//	otpcli -addr :7070 EXEC add-p0 mykey 5
//	otpcli -addr :7071 QUERY get p0 mykey
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/consensus"
	"otpdb/internal/db"
	"otpdb/internal/fd"
	"otpdb/internal/recovery"
	"otpdb/internal/sproc"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
	"otpdb/internal/wal"
)

func main() {
	var (
		id      = flag.Int("id", 0, "replica id (index into -peers)")
		peers   = flag.String("peers", "", "comma-separated replica addresses, index = id")
		client  = flag.String("client", ":7070", "client listen address")
		classes = flag.Int("classes", 8, "number of conflict classes")
		dataDir = flag.String("data", "", "durability directory (empty = in-memory only)")
		fsync   = flag.String("fsync", "group", "WAL fsync policy: commit|group|off (with -data)")
	)
	flag.Parse()
	if err := run(*id, *peers, *client, *classes, *dataDir, *fsync); err != nil {
		fmt.Fprintln(os.Stderr, "otpd:", err)
		os.Exit(1)
	}
}

// demoRegistry builds the keyspace schema: add-p<i>(key, delta) per
// class — returning the key's new value — plus the get(class, key) query.
func demoRegistry(classes int) (*sproc.Registry, error) {
	reg := sproc.NewRegistry()
	for c := 0; c < classes; c++ {
		class := sproc.ClassID(fmt.Sprintf("p%d", c))
		err := reg.RegisterUpdate(sproc.Update{
			Name:  "add-" + string(class),
			Class: class,
			Fn: func(ctx sproc.UpdateCtx) (storage.Value, error) {
				args := ctx.Args()
				if len(args) < 2 {
					return nil, fmt.Errorf("add needs key and delta")
				}
				key := storage.Key(storage.ValueString(args[0]))
				delta := storage.ValueInt64(args[1])
				cur, _ := ctx.Read(key)
				next := storage.Int64Value(storage.ValueInt64(cur) + delta)
				return next, ctx.Write(key, next)
			},
		})
		if err != nil {
			return nil, err
		}
	}
	if err := reg.RegisterQuery(sproc.Query{
		Name: "get",
		Fn: func(ctx sproc.QueryCtx) (storage.Value, error) {
			args := ctx.Args()
			if len(args) < 2 {
				return nil, fmt.Errorf("get needs class and key")
			}
			class := sproc.ClassID(storage.ValueString(args[0]))
			v, _ := ctx.Read(class, storage.Key(storage.ValueString(args[1])))
			return v, nil
		},
	}); err != nil {
		return nil, err
	}
	return reg, nil
}

func run(id int, peerList, clientAddr string, classes int, dataDir, fsync string) error {
	if peerList == "" {
		return fmt.Errorf("-peers is required")
	}
	parts := strings.Split(peerList, ",")
	addrs := make(map[transport.NodeID]string, len(parts))
	for i, addr := range parts {
		addrs[transport.NodeID(i)] = strings.TrimSpace(addr)
	}
	if id < 0 || id >= len(parts) {
		return fmt.Errorf("-id %d out of range for %d peers", id, len(parts))
	}

	// Wire registration for the gob codec.
	fd.RegisterWire()
	consensus.RegisterWire()
	abcast.RegisterWire()
	db.RegisterWire()

	node, err := transport.ListenTCP(transport.TCPConfig{
		ID:    transport.NodeID(id),
		Addrs: addrs,
	})
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()

	detector := fd.New(node, fd.Config{Interval: 100 * time.Millisecond})
	detector.Start()
	defer detector.Stop()

	cons := consensus.New(consensus.Config{
		Endpoint:     node,
		Suspector:    detector,
		RoundTimeout: 250 * time.Millisecond,
	})
	cons.Start()
	defer cons.Stop()

	bc := abcast.NewOptimistic(node, cons)
	if err := bc.Start(); err != nil {
		return err
	}
	defer func() { _ = bc.Stop() }()

	reg, err := demoRegistry(classes)
	if err != nil {
		return err
	}
	cfg := db.Config{
		ID:        transport.NodeID(id),
		Broadcast: bc,
		Registry:  reg,
	}
	if dataDir != "" {
		// Durable replica: recover checkpoint + WAL tail and resume at
		// the recovered definitive index. The replica owns the handle and
		// flushes/closes the WAL on Stop, so the SIGINT/SIGTERM path
		// below never drops the log tail.
		policy, perr := wal.ParseSyncPolicy(fsync)
		if perr != nil {
			return perr
		}
		dur, derr := recovery.Open(dataDir, recovery.Options{Sync: policy})
		if derr != nil {
			return derr
		}
		store := storage.NewStore()
		base, rerr := dur.Recover(store)
		if rerr != nil {
			_ = dur.Close()
			return rerr
		}
		cfg.Store = store
		cfg.Durability = dur
		cfg.InitialTOIndex = base
		fmt.Printf("otpd: replica %d recovered to commit index %d (fsync=%s)\n", id, base, policy)
		if base > 0 && len(parts) > 1 {
			// A recovered replica rejoining peers that kept running would
			// need the live-rejoin protocol (peer checkpoint + definitive
			// backlog, see otpdb.Cluster.RestartSite); over TCP only
			// whole-cluster restarts resume today. Recovered state is
			// served to queries either way.
			fmt.Printf("otpd: note: multi-peer restart resumes ordering only when all replicas restart together\n")
		}
	}
	rep, err := db.New(cfg)
	if err != nil {
		return err
	}
	rep.Start()
	defer rep.Stop()

	ln, err := net.Listen("tcp", clientAddr)
	if err != nil {
		return fmt.Errorf("client listen: %w", err)
	}
	defer func() { _ = ln.Close() }()
	fmt.Printf("otpd: replica %d up — peers %s, clients on %s\n", id, peerList, ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		_ = ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			return nil // shutting down
		}
		go serveClient(conn, rep)
	}
}

// srvHandle is one in-flight SUBMIT on a client connection: the
// server-side analogue of an otpdb.Handle, resolved by the replica's
// commit notification.
type srvHandle struct {
	start time.Time
	ch    chan db.CommitResult // buffered, resolved exactly once
}

// clientSession is the per-connection state: pending SUBMIT handles
// awaiting WAIT.
type clientSession struct {
	rep     *db.Replica
	pending map[string]*srvHandle
}

// serveClient speaks the line protocol on one client connection.
func serveClient(conn net.Conn, rep *db.Replica) {
	defer func() { _ = conn.Close() }()
	cs := &clientSession{rep: rep, pending: make(map[string]*srvHandle)}
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		reply := cs.handle(strings.Fields(sc.Text()))
		_, _ = w.WriteString(reply + "\n")
		_ = w.Flush()
	}
}

// fmtCommit renders a commit outcome in the EXEC/WAIT reply shape.
func fmtCommit(info db.CommitInfo, latency time.Duration) string {
	outcome := "fastpath"
	switch {
	case info.Retried:
		outcome = "retried"
	case info.Reordered:
		outcome = "reordered"
	}
	return fmt.Sprintf("OK value=%d to=%d outcome=%s latency=%s",
		storage.ValueInt64(info.Value), info.TOIndex, outcome,
		latency.Round(time.Microsecond))
}

func (cs *clientSession) handle(fields []string) string {
	if len(fields) == 0 {
		return "ERR empty command"
	}
	switch strings.ToUpper(fields[0]) {
	case "EXEC":
		if len(fields) < 2 {
			return "ERR EXEC needs a procedure"
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		start := time.Now()
		info, err := cs.rep.Exec(ctx, fields[1], parseArgs(fields[2:])...)
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmtCommit(info, time.Since(start))
	case "SUBMIT":
		if len(fields) < 2 {
			return "ERR SUBMIT needs a procedure"
		}
		h := &srvHandle{start: time.Now(), ch: make(chan db.CommitResult, 1)}
		id, err := cs.rep.SubmitNotify(fields[1], parseArgs(fields[2:]),
			func(res db.CommitResult) { h.ch <- res })
		if err != nil {
			return "ERR " + err.Error()
		}
		key := fmt.Sprintf("%d.%d", id.Origin, id.Seq)
		cs.pending[key] = h
		return "ID " + key
	case "WAIT":
		if len(fields) != 2 {
			return "ERR WAIT needs an id"
		}
		h, ok := cs.pending[fields[1]]
		if !ok {
			return "ERR unknown handle " + fields[1] + " (SUBMIT on this connection first)"
		}
		select {
		case res := <-h.ch:
			delete(cs.pending, fields[1])
			if res.Err != nil {
				return "ERR " + res.Err.Error()
			}
			return fmtCommit(res.Info, time.Since(h.start))
		case <-time.After(30 * time.Second):
			// Keep the handle: the result channel is buffered, so a
			// retried WAIT can still collect the commit when it lands.
			return "ERR timeout waiting for " + fields[1]
		}
	case "QUERY":
		if len(fields) < 2 {
			return "ERR QUERY needs a procedure"
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		v, err := cs.rep.Query(ctx, fields[1], parseArgs(fields[2:])...)
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("VALUE %d", storage.ValueInt64(v))
	case "STATS":
		st := cs.rep.Manager().Stats()
		return fmt.Sprintf("STATS commits=%d aborts=%d reorders=%d pending=%d",
			st.Commits, st.Aborts, st.Reorders, cs.rep.Manager().Pending())
	case "DIGEST":
		return fmt.Sprintf("DIGEST %016x", cs.rep.Store().Digest())
	default:
		return "ERR unknown command " + fields[0]
	}
}

// parseArgs converts protocol arguments: decimal integers become Int64
// values, everything else a string value.
func parseArgs(args []string) []storage.Value {
	out := make([]storage.Value, len(args))
	for i, a := range args {
		if n, err := strconv.ParseInt(a, 10, 64); err == nil && i > 0 {
			out[i] = storage.Int64Value(n)
			continue
		}
		out[i] = storage.StringValue(a)
	}
	return out
}
