// Command otpd runs one replica of the replicated database over TCP — the
// multi-process deployment of the paper's architecture. Every replica
// serves a small line protocol for clients (see cmd/otpcli), the TCP
// incarnation of the in-process Session API: EXEC is Session.Exec with
// its typed result, SUBMIT/WAIT are Session.SubmitAsync plus Handle
// resolution, so clients pipeline many transactions per connection.
//
//	EXEC <procedure> [arg ...]   -> OK value=<int64> to=<idx> outcome=<fastpath|reordered|retried> latency=<dur>
//	                              | ERR <message>
//	SUBMIT <procedure> [arg ...] -> ID <origin>.<seq> | ERR <message>
//	WAIT <origin>.<seq>          -> OK ... (as EXEC) | ERR <message>
//	QUERY <procedure> [arg ...]  -> VALUE <int64> | ERR <message>
//	STATS (alias STATUS)         -> STATS commits=<n> aborts=<n> reorders=<n> pending=<n> to=<idx> recovered=<idx> epoch=<e> members=<n> role=<joining|serving|donor>
//	DIGEST                       -> DIGEST <hex>
//	SHARD LIST                   -> SHARDS n=<s> version=<v>
//	SHARD MAP <class>            -> SHARD class=<class> id=<g>
//	MEMBER ADD <id> <addr>       -> OK epoch=<e> members=<n> to=<idx> | ERR <message>
//	MEMBER REMOVE <id>           -> OK ... (as ADD)
//	MEMBER REPLACE <id> <addr>   -> OK ... (as ADD)
//	METRICS                      -> METRICS n=<count>, then one series per line
//	TRACE <id>                   -> TRACE n=<count>, then one JSON span per line
//	WATCH                        -> WATCH streaming, then one EVENT {json} line per flight-recorder event (push; ends at disconnect)
//
// SUBMIT handles are per-connection: WAIT resolves an ID submitted on the
// same connection (pipeline SUBMITs first, then WAIT each ID). STATS is
// answered in every phase of the replica's life: role=joining while a
// state transfer is catching the replica up (to/recovered report the
// locally recovered index), serving once it processes transactions, and
// donor while it streams state to another joiner. Commands that need the
// replica (EXEC, QUERY, ...) wait for it to come up.
//
// The demo schema partitions an integer keyspace into -classes conflict
// classes with procedures add-p<i>(key, delta) — returning the key's new
// value — the cross-class query get(p<i>, key), and the two-class
// transfer xfer(srckey, dstkey, amt) moving value from p0 to p1.
//
// # Sharding
//
// With -shards S the conflict classes are partitioned across S
// independent replica groups hosted by the same processes: class p<i>
// lives on shard i mod S, and shard g's replication mesh listens on each
// peer's port + g (keep S consecutive ports free per replica; -peers
// names shard 0's addresses). Transactions route transparently: EXEC and
// SUBMIT of a procedure whose classes live in one shard run the paper's
// protocol unchanged inside that shard's group, while a procedure
// spanning shards (such as xfer when S > 1) is ordered definitively in
// every touched shard by an optimistic two-phase protocol that commits
// everywhere or nowhere. STATS then reports a shards=<S> summary line
// followed by one SHARD id=<g> line per shard, and DIGEST prints one
// digest per shard.
//
// With -data the replica is durable: definitive commits are written
// ahead to a segmented CRC-framed log (fsync policy -fsync
// commit|group|off) with periodic checkpoints (one directory per shard
// under -data when -shards > 1), the WAL is flushed and closed on
// SIGINT/SIGTERM, and a restarted process — even after kill -9 —
// recovers its committed state and resumes at the recovered definitive
// index. The process's failure-detector incarnation is persisted under
// -data too, so a clock stepping backwards across a crash cannot make a
// restarted replica look older than its dead self.
//
// A durable replica that recovered committed state automatically rejoins
// a running cluster through the statex state-transfer service: it
// advertises its recovered index to a live peer (unsuspected peers
// first, failing over down the list) and receives either the definitive
// backlog it missed or, when the peers' retained history no longer
// covers the gap, a full checkpoint plus the tail — then re-enters
// consensus at the current stage. -join forces the same path for a
// replica with no usable local state. When no peer answers (for
// instance, a whole-cluster restart where every process comes up at
// once), the replica falls back to a cold start from local state alone.
// With -shards every shard group negotiates its own transfer.
//
// The group membership is dynamic: the configuration (an epoch plus the
// member list) is itself replicated state, seeded from -peers at epoch 1
// and changed through definitively-ordered MEMBER commands. Every
// replica switches its quorum, its failure-detector targets and its TCP
// peer links at the commit of the change. A permanently dead site is
// replaced without a whole-cluster restart: MEMBER REPLACE <id> <addr>
// on a survivor, then start a fresh process with that id, the updated
// -peers list and -join — it state-transfers from a donor and activates.
// A removed site keeps its process alive but is out of the group; stop
// it once MEMBER REMOVE returns. With -shards a MEMBER command commits
// the change in every shard group (shard g at the given address's port
// + g).
//
// # Observability
//
// Every layer of the replica registers runtime telemetry — reorder rate,
// opt→definitive latency, consensus rounds and decision latency, WAL
// fsync latency, state-transfer volume, failure-detector suspicions,
// cross-shard vote latency — in an in-process metrics registry (see
// internal/metrics and DESIGN.md §12). -http serves it at /metrics in
// the Prometheus text format, alongside net/http/pprof under
// /debug/pprof, and at /cluster/metrics as a federated scrape: every
// live member's series site-labelled plus agg=sum/max/merge rollups,
// membership-aware and epoch-fenced (an evicted member's series
// disappear within one scrape). The METRICS verb dumps the local
// registry over the client protocol (one series per line; histograms as
// count/p50/p95/p99). TRACE <id> returns a transaction's lifecycle
// spans (submit/opt-deliver/to-deliver/commit/abort, plus
// prepare/vote/decide for cross-shard transactions) as JSON, one per
// line — stitched cluster-wide from every member's span ring through
// the obs fan-out, falling back to the local ring; a cross-shard EXEC
// reply carries trace=<id> to feed back in. WATCH streams the flight
// recorder (internal/events): epoch changes, suspicions, replacement
// rounds and state-transfer negotiations as EVENT {json} lines, ring
// replay then live tail. STATS reads its scheduler counters out of the
// same registry, so the two surfaces cannot drift (see DESIGN.md §13
// for the trace wire format and fencing rules).
//
// Example 3-replica cluster on one machine:
//
//	otpd -id 0 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 -client :7070 -data data/0 &
//	otpd -id 1 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 -client :7071 -data data/1 &
//	otpd -id 2 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 -client :7072 -data data/2 &
//	otpcli -addr :7070 EXEC add-p0 mykey 5
//	otpcli -addr :7071 QUERY get p0 mykey
//	kill -9 <pid of replica 2>; otpd -id 2 ... -data data/2 &   # rejoins live
//	# replica 2's machine died for good: replace it at a new address
//	otpcli -addr :7070 MEMBER REPLACE 2 127.0.0.1:9005
//	otpd -id 2 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9005 -client :7072 -data data2b/2 -join &
//	otpcli -addr :7072 STATUS
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/consensus"
	"otpdb/internal/db"
	"otpdb/internal/events"
	"otpdb/internal/fd"
	"otpdb/internal/member"
	"otpdb/internal/metrics"
	"otpdb/internal/obs"
	"otpdb/internal/recovery"
	"otpdb/internal/shard"
	"otpdb/internal/sproc"
	"otpdb/internal/statex"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
	"otpdb/internal/wal"
)

func main() {
	var (
		id      = flag.Int("id", 0, "replica id (index into -peers)")
		peers   = flag.String("peers", "", "comma-separated replica addresses for shard 0, index = id")
		client  = flag.String("client", ":7070", "client listen address")
		classes = flag.Int("classes", 8, "number of conflict classes")
		shards  = flag.Int("shards", 1, "number of shard groups (shard g uses peer port + g)")
		dataDir = flag.String("data", "", "durability directory (empty = in-memory only)")
		fsync   = flag.String("fsync", "group", "WAL fsync policy: commit|group|off (with -data)")
		join    = flag.Bool("join", false, "force a state transfer from a live peer before serving")
		httpOn  = flag.String("http", "", "observability listen address serving /metrics and /debug/pprof (empty = disabled)")
	)
	flag.Parse()
	if err := run(*id, *peers, *client, *classes, *shards, *dataDir, *fsync, *join, *httpOn); err != nil {
		fmt.Fprintln(os.Stderr, "otpd:", err)
		os.Exit(1)
	}
}

// demoRegistry builds the keyspace schema: add-p<i>(key, delta) per
// class — returning the key's new value — plus the get(class, key) query
// and, with at least two classes, the two-class transfer
// xfer(srckey, dstkey, amt).
func demoRegistry(classes int) (*sproc.Registry, error) {
	reg := sproc.NewRegistry()
	for c := 0; c < classes; c++ {
		class := sproc.ClassID(fmt.Sprintf("p%d", c))
		err := reg.RegisterUpdate(sproc.Update{
			Name:  "add-" + string(class),
			Class: class,
			Fn: func(ctx sproc.UpdateCtx) (storage.Value, error) {
				args := ctx.Args()
				if len(args) < 2 {
					return nil, fmt.Errorf("add needs key and delta")
				}
				key := storage.Key(storage.ValueString(args[0]))
				delta := storage.ValueInt64(args[1])
				cur, _ := ctx.Read(key)
				next := storage.Int64Value(storage.ValueInt64(cur) + delta)
				return next, ctx.Write(key, next)
			},
		})
		if err != nil {
			return nil, err
		}
	}
	if classes >= 2 {
		// xfer spans p0 and p1 — with -shards > 1 those are different
		// groups and the transaction exercises the cross-shard protocol.
		err := reg.RegisterMulti(sproc.MultiUpdate{
			Name:    "xfer",
			Classes: []sproc.ClassID{"p0", "p1"},
			Fn: func(ctx sproc.MultiUpdateCtx) (storage.Value, error) {
				args := ctx.Args()
				if len(args) < 3 {
					return nil, fmt.Errorf("xfer needs srckey, dstkey and amount")
				}
				src := storage.Key(storage.ValueString(args[0]))
				dst := storage.Key(storage.ValueString(args[1]))
				amt := storage.ValueInt64(args[2])
				sv, _ := ctx.Read("p0", src)
				dv, _ := ctx.Read("p1", dst)
				next := storage.Int64Value(storage.ValueInt64(sv) - amt)
				if err := ctx.Write("p0", src, next); err != nil {
					return nil, err
				}
				if err := ctx.Write("p1", dst, storage.Int64Value(storage.ValueInt64(dv)+amt)); err != nil {
					return nil, err
				}
				return next, nil
			},
		})
		if err != nil {
			return nil, err
		}
	}
	if err := reg.RegisterQuery(sproc.Query{
		Name: "get",
		Fn: func(ctx sproc.QueryCtx) (storage.Value, error) {
			args := ctx.Args()
			if len(args) < 2 {
				return nil, fmt.Errorf("get needs class and key")
			}
			class := sproc.ClassID(storage.ValueString(args[0]))
			v, _ := ctx.Read(class, storage.Key(storage.ValueString(args[1])))
			return v, nil
		},
	}); err != nil {
		return nil, err
	}
	// Group membership rides the same machinery as user transactions.
	if err := member.RegisterProc(reg); err != nil {
		return nil, err
	}
	return reg, nil
}

// shardStack is one shard group's per-process state. The replica appears
// only once recovery and any state transfer finish; STATS answers in
// every phase so operators (and tests) can watch a joiner catch up.
type shardStack struct {
	rep     atomic.Pointer[db.Replica]
	xs      atomic.Pointer[statex.Server]
	tracker atomic.Pointer[member.Tracker]
	base    atomic.Int64 // locally recovered definitive index
}

// server is the process state the client protocol serves from.
type server struct {
	shards  []*shardStack
	reg     *sproc.Registry
	smap    *shard.Map
	coord   *shard.Coordinator
	metrics *metrics.Registry
	trace   *metrics.TraceRing
	events  *events.Recorder
	station atomic.Pointer[obs.Station] // cluster-wide trace/metrics fan-out; published by shard 0's build
	ready   chan struct{}               // closed when every shard's replica is published
}

// membership renders the epoch/size STATS fields of one shard ("0 0"
// while joining).
func (s *shardStack) membership() (uint64, int) {
	tr := s.tracker.Load()
	if tr == nil {
		return 0, 0
	}
	cfg := tr.Config()
	return cfg.Epoch, len(cfg.Members)
}

// waitReady blocks until every shard's replica is up (recovery and state
// transfer done) or the timeout expires; it returns shard 0's replica or
// nil.
func (s *server) waitReady(d time.Duration) *db.Replica {
	select {
	case <-s.ready:
		return s.shards[0].rep.Load()
	case <-time.After(d):
		return nil
	}
}

// role reports the process's current life-cycle phase.
func (s *server) role() string {
	select {
	case <-s.ready:
	default:
		return "joining"
	}
	for _, st := range s.shards {
		if xs := st.xs.Load(); xs != nil && xs.Serving() > 0 {
			return "donor"
		}
	}
	return "serving"
}

// shardRole is the per-shard role line ("joining" before the shard's
// replica exists, even if other shards are already up).
func (s *shardStack) role() string {
	if s.rep.Load() == nil {
		return "joining"
	}
	if xs := s.xs.Load(); xs != nil && xs.Serving() > 0 {
		return "donor"
	}
	return "serving"
}

// donorOrder lists candidate state-transfer donors: every group member
// but ourselves, unsuspected ones first. Right after startup the
// detector has heard nobody, so the order degenerates to id order and
// Fetch's per-donor timeout skims past dead peers.
func donorOrder(d *fd.Detector, self transport.NodeID, ids []transport.NodeID) []transport.NodeID {
	var live, suspect []transport.NodeID
	for _, id := range ids {
		if id == self {
			continue
		}
		if d.Suspected(id) {
			suspect = append(suspect, id)
		} else {
			live = append(live, id)
		}
	}
	return append(live, suspect...)
}

// shiftAddr rebases a host:port address to port + delta — shard g's mesh
// listens next to shard 0's.
func shiftAddr(addr string, delta int) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("address %q: %w", addr, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", fmt.Errorf("address %q: bad port: %w", addr, err)
	}
	return net.JoinHostPort(host, strconv.Itoa(p+delta)), nil
}

func run(id int, peerList, clientAddr string, classes, shards int, dataDir, fsync string, forceJoin bool, httpAddr string) error {
	if peerList == "" {
		return fmt.Errorf("-peers is required")
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be positive, got %d", shards)
	}
	parts := strings.Split(peerList, ",")
	if id < 0 || id >= len(parts) {
		return fmt.Errorf("-id %d out of range for %d peers", id, len(parts))
	}
	if forceJoin && len(parts) < 2 {
		return fmt.Errorf("-join needs at least one peer to join from")
	}

	// Wire registration for the gob codec.
	fd.RegisterWire()
	consensus.RegisterWire()
	abcast.RegisterWire()
	db.RegisterWire()
	statex.RegisterWire()
	obs.RegisterWire()

	reg, err := demoRegistry(classes)
	if err != nil {
		return err
	}

	// The shard map is pure convention — every process derives the same
	// one from -classes and -shards: class p<i> pinned to shard i mod S.
	smap, err := shard.NewMap(shards)
	if err != nil {
		return err
	}
	for c := 0; c < classes; c++ {
		if err := smap.Pin(sproc.ClassID(fmt.Sprintf("p%d", c)), c%shards); err != nil {
			return err
		}
	}

	// The failure-detector/transport incarnation must grow monotonically
	// across restarts of a durable replica; persist it under -data so a
	// clock stepping backwards over a crash cannot mint an older-looking
	// incarnation (in-memory replicas fall back to the clock).
	var inc uint64
	if dataDir != "" {
		inc, err = transport.PersistentIncarnation(dataDir)
		if err != nil {
			return fmt.Errorf("incarnation: %w", err)
		}
	}

	srv := &server{
		reg: reg, smap: smap, ready: make(chan struct{}),
		metrics: metrics.NewRegistry(),
		trace:   metrics.NewTraceRing(4096),
		events:  events.NewRecorder(4096),
	}
	for g := 0; g < shards; g++ {
		srv.shards = append(srv.shards, &shardStack{})
	}
	siteScope := srv.metrics.Scope("site", strconv.Itoa(id))
	shub := shard.NewHub(shard.Config{Origin: transport.NodeID(id), Incarnation: inc, Metrics: siteScope})
	if err := shub.Register(reg); err != nil {
		return err
	}
	for g := 0; g < shards; g++ {
		st := srv.shards[g]
		shub.Attach(g, id, func() *db.Replica { return st.rep.Load() })
	}
	srv.coord = shard.NewCoordinator(shub, smap, reg, shard.CoordConfig{Metrics: siteScope, Trace: srv.trace})

	// The observability endpoint comes up first: /metrics (Prometheus
	// text format) and /debug/pprof answer through recovery, join and
	// serving alike. pprof registers on the default mux at import.
	if httpAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = metrics.WriteProm(w, srv.metrics)
		})
		// /cluster/metrics federates every live member's registry into one
		// scrape: each member's series site-labelled plus agg rollups. The
		// scrape is membership-aware (only current members are queried) and
		// epoch-fenced (replies from an older membership epoch are dropped),
		// so an evicted member's series disappear within one scrape.
		mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, req *http.Request) {
			station := srv.station.Load()
			tr := srv.shards[0].tracker.Load()
			if station == nil || tr == nil {
				http.Error(w, "replica still joining", http.StatusServiceUnavailable)
				return
			}
			ctx, cancel := context.WithTimeout(req.Context(), 5*time.Second)
			defer cancel()
			samples := station.Metrics(ctx, tr.Members())
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = metrics.WritePromSamples(w, samples)
		})
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		hln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return fmt.Errorf("http listen: %w", err)
		}
		hsrv := &http.Server{Handler: mux}
		go func() { _ = hsrv.Serve(hln) }()
		defer func() { _ = hsrv.Close() }()
		fmt.Printf("otpd: replica %d observability on http://%s/metrics\n", id, hln.Addr())
	}

	// The client listener comes up before the replicas so STATS can
	// report the joining phase; commands that need a replica wait.
	ln, err := net.Listen("tcp", clientAddr)
	if err != nil {
		return fmt.Errorf("client listen: %w", err)
	}
	defer func() { _ = ln.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		cancel()
		_ = ln.Close()
	}()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-ctx.Done():
					return // shutting down
				default:
				}
				// Transient failure (e.g. fd exhaustion): keep the
				// replica's client port alive rather than silently
				// refusing all future connections.
				time.Sleep(50 * time.Millisecond)
				continue
			}
			go serveClient(conn, srv)
		}
	}()

	// Build every shard group's stack in shard order. Each is the full
	// single-group pipeline: local recovery, membership, optional state
	// transfer, consensus, OPT-ABcast, replica, statex donor service.
	for g := 0; g < shards; g++ {
		stopShard, err := buildShard(ctx, srv, g, id, parts, shards, dataDir, fsync, forceJoin, inc)
		if err != nil {
			return fmt.Errorf("shard %d: %w", g, err)
		}
		defer stopShard()
	}
	shub.Start()
	defer shub.Stop()
	close(srv.ready)
	fmt.Printf("otpd: replica %d up — peers %s, %d shard(s), clients on %s\n", id, peerList, shards, ln.Addr())

	<-ctx.Done()
	return nil
}

// buildShard brings one shard group's replica up and publishes it in
// srv.shards[g]. The returned function tears the stack down.
func buildShard(ctx context.Context, srv *server, g, id int, peers []string, shards int, dataDir, fsync string, forceJoin bool, inc uint64) (func(), error) {
	st := srv.shards[g]
	addrs := make(map[transport.NodeID]string, len(peers))
	for i, addr := range peers {
		shifted, err := shiftAddr(strings.TrimSpace(addr), g)
		if err != nil {
			return nil, err
		}
		addrs[transport.NodeID(i)] = shifted
	}
	var cleanup []func()
	fail := func(err error) (func(), error) {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
		return nil, err
	}

	scope := srv.metrics.Scope("shard", strconv.Itoa(g), "site", strconv.Itoa(id))
	node, err := transport.ListenTCP(transport.TCPConfig{
		ID:          transport.NodeID(id),
		Addrs:       addrs,
		Incarnation: inc,
		Metrics:     scope,
	})
	if err != nil {
		return fail(err)
	}
	cleanup = append(cleanup, func() { _ = node.Close() })

	fdcfg := fd.Config{Interval: 100 * time.Millisecond, Incarnation: inc, Metrics: scope}
	if g == 0 {
		// Flight-recorder events come from the first group only: site i of
		// every group shares a failure domain, so one causal log per
		// process suffices and per-shard duplicates would only be noise.
		fdcfg.Events = srv.events
	}
	detector := fd.New(node, fdcfg)
	detector.Start()
	cleanup = append(cleanup, detector.Stop)

	// Local recovery: a durable replica replays checkpoint + WAL tail
	// and resumes at the recovered definitive index. The group
	// configuration is seeded from -peers at version 0; recovered or
	// transferred state carrying a newer committed configuration
	// overrides the seed, so the replica lands in the correct epoch.
	shardDir := dataDir
	if dataDir != "" && shards > 1 {
		shardDir = filepath.Join(dataDir, fmt.Sprintf("shard-%d", g))
	}
	bootstrap := member.Bootstrap(addrs)
	store := storage.NewStore()
	member.Seed(store, bootstrap)
	base := int64(0)
	var dur *recovery.Durability
	if shardDir != "" {
		policy, perr := wal.ParseSyncPolicy(fsync)
		if perr != nil {
			return fail(perr)
		}
		d, derr := recovery.Open(shardDir, recovery.Options{Sync: policy, Metrics: scope})
		if derr != nil {
			return fail(derr)
		}
		b, rerr := d.Recover(store)
		if rerr != nil {
			_ = d.Close()
			return fail(rerr)
		}
		dur, base = d, b
		fmt.Printf("otpd: replica %d%s recovered to commit index %d (fsync=%s)\n", id, shardTag(g, shards), base, policy)
	}
	st.base.Store(base)

	// The membership tracker is primed from the committed configuration
	// the store now holds — the -peers seed for a fresh start, the
	// recovered one otherwise — and retargets the transport mesh and the
	// failure detector on every epoch change, including right now: the
	// recovered configuration may already disagree with -peers (peers
	// replaced at new addresses while we were down), and both the join
	// probe below and the consensus view must follow the committed
	// membership, not the stale command line.
	mcfg, err := member.CommittedConfig(store)
	if err != nil {
		return fail(fmt.Errorf("membership: %w", err))
	}
	applyMembership := func(cfg member.Config) {
		node.SetPeers(cfg.Addrs())
		detector.SetMembers(cfg.IDs())
		fmt.Printf("otpd: replica %d%s membership %s\n", id, shardTag(g, shards), cfg)
	}
	tracker := member.NewTracker(mcfg)
	if g == 0 {
		tracker.SetEvents(srv.events, id)
		// The tracker only records configurations it *applies*; the
		// bootstrap install happens in NewTracker, so log it here —
		// a fresh replica's flight recorder is never empty and WATCH
		// always has a first event to replay.
		srv.events.Record(id, events.KindEpochChange,
			"epoch", strconv.FormatUint(mcfg.Epoch, 10),
			"members", fmt.Sprint(mcfg.IDs()))
	}
	tracker.OnChange(applyMembership)
	applyMembership(mcfg)
	st.tracker.Store(tracker)

	if g == 0 {
		// The observability station rides the first group's mesh (every
		// process has one): it answers peers' TRACE and /cluster/metrics
		// fan-outs from the local ring and registry, and stamps replies
		// with the membership epoch so the caller can fence stale members.
		station := obs.New(node, obs.Config{
			Site:    id,
			Epoch:   tracker.Epoch,
			Trace:   srv.trace,
			Metrics: srv.metrics,
		})
		station.Start()
		cleanup = append(cleanup, station.Stop)
		srv.station.Store(station)
	}

	// State transfer: a durable replica that recovered committed state
	// assumes the cluster kept running and catches up from a live peer;
	// -join forces the same for a replica with no local state. A cluster
	// where every process restarts together has no donor to answer, so
	// the probe times out and the replica falls back to a cold start.
	var joinState *abcast.JoinState
	if len(peers) > 1 && (forceJoin || base > 0) {
		fmt.Printf("otpd: replica %d%s joining: advertising recovered index %d to peers\n", id, shardTag(g, shards), base)
		// Two probe rounds: the second catches a staggered restart where
		// the first round raced the donors' own startup.
		var xfer *statex.Transfer
		var jerr error
		for attempt := 0; attempt < 2; attempt++ {
			xfer, jerr = statex.Fetch(ctx, node, base, donorOrder(detector, transport.NodeID(id), tracker.Members()),
				statex.Options{RespTimeout: 3 * time.Second, Parallel: true, Metrics: scope, Events: srv.events})
			if jerr == nil || ctx.Err() != nil {
				break
			}
		}
		switch {
		case jerr == nil:
			if xfer.Mode == statex.CheckpointTail {
				store = storage.NewStore()
				store.InstallCheckpoint(xfer.Checkpoint)
				base = xfer.Base
				st.base.Store(base)
				if dur != nil {
					// Local history is obsolete below the transferred
					// checkpoint; reset the directory to it.
					if rerr := dur.ResetTo(xfer.Checkpoint); rerr != nil {
						_ = dur.Close()
						return fail(rerr)
					}
				}
				// The transferred checkpoint may carry a newer committed
				// configuration than local recovery did; follow it before
				// consensus starts.
				if nc, cerr := member.CommittedConfig(store); cerr == nil {
					tracker.Apply(nc)
				}
			}
			joinState = &xfer.Join
			fmt.Printf("otpd: replica %d%s state transfer from %v: %s, base %d, backlog %d, resume stage %d\n",
				id, shardTag(g, shards), xfer.Donor, xfer.Mode, base, len(xfer.Join.Backlog), xfer.Join.StartStage)
		case forceJoin:
			if dur != nil {
				_ = dur.Close()
			}
			return fail(fmt.Errorf("join: %w", jerr))
		default:
			// Correct for a whole-cluster restart (nobody was serving,
			// every replica cold-starts from the same index); wrong if
			// the cluster actually kept running — this replica would
			// re-enter ordering misaligned with the survivors. Make the
			// fallback loud so the operator can tell which one happened.
			fmt.Printf("otpd: WARNING: replica %d%s found no live donor; cold-starting from local state.\n", id, shardTag(g, shards))
			fmt.Printf("otpd: WARNING: safe only if all replicas restart together — if the cluster is still running, stop this replica and restart it with -join\n")
			fmt.Printf("otpd: (join error: %v)\n", jerr)
		}
	}

	ccfg := consensus.Config{
		Endpoint:     node,
		Suspector:    detector,
		RoundTimeout: 250 * time.Millisecond,
		View:         tracker,
		Metrics:      scope,
	}
	if joinState != nil {
		ccfg.CatchUpFrom = joinState.StartStage
	}
	cons := consensus.New(ccfg)
	cons.Start()
	cleanup = append(cleanup, cons.Stop)

	aopts := []abcast.Option{abcast.WithDefBase(uint64(base)), abcast.WithMetrics(scope)}
	if joinState != nil {
		aopts = append(aopts, abcast.WithJoin(*joinState))
	}
	bc := abcast.NewOptimistic(node, cons, aopts...)
	if err := bc.Start(); err != nil {
		return fail(err)
	}
	cleanup = append(cleanup, func() { _ = bc.Stop() })

	cfg := db.Config{
		ID:          transport.NodeID(id),
		Broadcast:   bc,
		Registry:    srv.reg,
		Store:       store,
		Metrics:     scope,
		Trace:       srv.trace,
		Shard:       g,
		ConfigClass: member.Class,
		OnConfigCommit: func(v storage.Value, _ int64) {
			if next, derr := member.Decode(v); derr == nil {
				tracker.Apply(next)
			}
		},
	}
	if dur != nil {
		// The replica owns the handle and flushes/closes the WAL on
		// Stop, so the SIGINT/SIGTERM path never drops the log tail.
		cfg.Durability = dur
		cfg.InitialTOIndex = base
	}
	rep, err := db.New(cfg)
	if err != nil {
		return fail(err)
	}
	rep.Start()
	cleanup = append(cleanup, rep.Stop)

	// Serve state transfers to future joiners.
	xs := statex.NewServer(node, statex.ReplicaSource{Replica: rep, Engine: bc}, statex.WithEvents(srv.events))
	xs.Start()
	cleanup = append(cleanup, xs.Stop)

	st.rep.Store(rep)
	st.xs.Store(xs)
	return func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}, nil
}

// shardTag renders " shard g" in log lines, empty in single-shard mode
// (whose log shapes predate sharding).
func shardTag(g, shards int) string {
	if shards == 1 {
		return ""
	}
	return fmt.Sprintf(" shard %d", g)
}

// srvHandle is one in-flight SUBMIT on a client connection: the
// server-side analogue of an otpdb.Handle. The reply line is rendered at
// resolution and delivered over the buffered channel exactly once.
type srvHandle struct {
	ch chan string
}

// clientSession is the per-connection state: pending SUBMIT handles
// awaiting WAIT.
type clientSession struct {
	srv      *server
	pending  map[string]*srvHandle
	crossSeq uint64 // per-connection cross-shard handle counter
}

// serveClient speaks the line protocol on one client connection.
func serveClient(conn net.Conn, srv *server) {
	defer func() { _ = conn.Close() }()
	cs := &clientSession{srv: srv, pending: make(map[string]*srvHandle)}
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) > 0 && strings.ToUpper(fields[0]) == "WATCH" {
			// WATCH switches the connection to push mode: the flight
			// recorder's retained ring replays first, then every new event
			// streams as it is recorded, until the client disconnects.
			streamWatch(conn, w, srv)
			return
		}
		reply := cs.handle(fields)
		_, _ = w.WriteString(reply + "\n")
		_ = w.Flush()
	}
}

// streamWatch serves the WATCH verb: `EVENT {json}` lines, ring replay
// then live tail. It returns when the client goes away (write error, or
// the read side seeing EOF) — the subscription is cancelled so a dead
// watcher costs the recorder nothing.
func streamWatch(conn net.Conn, w *bufio.Writer, srv *server) {
	ch, cancel := srv.events.Watch(256)
	defer cancel()
	writeEvent := func(ev events.Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := w.WriteString("EVENT " + string(b) + "\n"); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	if _, err := w.WriteString("WATCH streaming\n"); err != nil {
		return
	}
	if w.Flush() != nil {
		return
	}
	for _, ev := range srv.events.Events() {
		if !writeEvent(ev) {
			return
		}
	}
	// A watcher that just hangs up produces no write error until the
	// next event; poll the read side so an idle WATCH still ends.
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		buf := make([]byte, 1)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !writeEvent(ev) {
				return
			}
		case <-closed:
			return
		}
	}
}

// fmtCommit renders a commit outcome in the EXEC/WAIT reply shape.
func fmtCommit(info db.CommitInfo, latency time.Duration) string {
	outcome := "fastpath"
	switch {
	case info.Retried:
		outcome = "retried"
	case info.Reordered:
		outcome = "reordered"
	}
	return fmt.Sprintf("OK value=%d to=%d outcome=%s latency=%s",
		storage.ValueInt64(info.Value), info.TOIndex, outcome,
		latency.Round(time.Microsecond))
}

// fmtCross renders a committed cross-shard transaction: the usual shape
// (to= is the home shard's position) plus the full per-shard positions.
func fmtCross(res shard.CrossResult, latency time.Duration) string {
	outcome := "fastpath"
	if res.Retries > 0 {
		outcome = "retried"
	}
	home := int64(0)
	spans := make([]string, 0, len(res.ShardTO))
	for _, st := range res.ShardTO {
		if st.Shard == res.Home {
			home = st.TOIndex
		}
		spans = append(spans, fmt.Sprintf("%d:%d", st.Shard, st.TOIndex))
	}
	out := fmt.Sprintf("OK value=%d to=%d outcome=%s latency=%s shard=%d xto=%s",
		storage.ValueInt64(res.Value), home, outcome,
		latency.Round(time.Microsecond), res.Home, strings.Join(spans, ","))
	if res.Trace != "" {
		// The cluster-wide trace id: feed it back to TRACE to stitch the
		// transaction's spans from every member.
		out += " trace=" + res.Trace
	}
	return out
}

// schedStats is one shard's scheduler counters as STATS reports them,
// read from the metrics registry — the same Func collectors /metrics
// scrapes — so the two surfaces cannot drift.
type schedStats struct {
	commits, aborts, reorders uint64
	pending                   int
	to                        int64
}

// schedFromSnapshot extracts shard g's scheduler series from one
// registry snapshot.
func schedFromSnapshot(snap []metrics.Sample, g int) schedStats {
	want := strconv.Itoa(g)
	var out schedStats
	for _, s := range snap {
		if !hasLabel(s.Labels, "shard", want) {
			continue
		}
		switch s.Name {
		case "otp_commits_total":
			out.commits = uint64(s.Value)
		case "otp_rollback_total":
			out.aborts = uint64(s.Value)
		case "otp_reposition_total":
			out.reorders = uint64(s.Value)
		case "otp_pending":
			out.pending = int(s.Value)
		case "otp_last_to_index":
			out.to = int64(s.Value)
		}
	}
	return out
}

func hasLabel(labels []metrics.Label, key, value string) bool {
	for _, l := range labels {
		if l.Key == key && l.Value == value {
			return true
		}
	}
	return false
}

// shardStatsLine renders one shard's counters in the STATS field shape.
func shardStatsLine(snap []metrics.Sample, g int, st *shardStack) string {
	rep := st.rep.Load()
	base := st.base.Load()
	epoch, members := st.membership()
	if rep == nil {
		return fmt.Sprintf("SHARD id=%d commits=0 aborts=0 reorders=0 pending=0 to=%d recovered=%d epoch=%d members=%d role=%s",
			g, base, base, epoch, members, st.role())
	}
	ss := schedFromSnapshot(snap, g)
	return fmt.Sprintf("SHARD id=%d commits=%d aborts=%d reorders=%d pending=%d to=%d recovered=%d epoch=%d members=%d role=%s",
		g, ss.commits, ss.aborts, ss.reorders, ss.pending,
		ss.to, base, epoch, members, st.role())
}

// routeShard resolves which shard group an update procedure belongs to:
// (g, false) for a single-shard procedure, (_, true) for one spanning
// shards.
func (cs *clientSession) routeShard(proc string) (int, bool, error) {
	classes, err := cs.srv.reg.UpdateClasses(proc)
	if err != nil {
		return 0, false, err
	}
	split := cs.srv.smap.Split(classes)
	if len(split) > 1 {
		return 0, true, nil
	}
	for g := range split {
		return g, false, nil
	}
	return 0, false, nil
}

func (cs *clientSession) handle(fields []string) string {
	if len(fields) == 0 {
		return "ERR empty command"
	}
	srv := cs.srv
	cmd := strings.ToUpper(fields[0])
	if cmd == "STATS" || cmd == "STATUS" {
		// Answered in every phase: a joiner reports its progress before
		// the replicas exist. Single-shard keeps the historic one-line
		// shape; sharded mode prints a summary line plus one SHARD line
		// per group.
		snap := srv.metrics.Snapshot()
		if len(srv.shards) == 1 {
			st := srv.shards[0]
			base := st.base.Load()
			epoch, members := st.membership()
			if st.rep.Load() == nil {
				return fmt.Sprintf("STATS commits=0 aborts=0 reorders=0 pending=0 to=%d recovered=%d epoch=%d members=%d role=%s",
					base, base, epoch, members, srv.role())
			}
			ss := schedFromSnapshot(snap, 0)
			return fmt.Sprintf("STATS commits=%d aborts=%d reorders=%d pending=%d to=%d recovered=%d epoch=%d members=%d role=%s",
				ss.commits, ss.aborts, ss.reorders, ss.pending,
				ss.to, base, epoch, members, srv.role())
		}
		var commits, aborts, reorders uint64
		var pending int
		var to, recovered int64
		for g, st := range srv.shards {
			recovered += st.base.Load()
			if st.rep.Load() != nil {
				ss := schedFromSnapshot(snap, g)
				commits += ss.commits
				aborts += ss.aborts
				reorders += ss.reorders
				pending += ss.pending
				to += ss.to
			} else {
				to += st.base.Load()
			}
		}
		epoch, members := srv.shards[0].membership()
		lines := []string{fmt.Sprintf("STATS shards=%d commits=%d aborts=%d reorders=%d pending=%d to=%d recovered=%d epoch=%d members=%d role=%s",
			len(srv.shards), commits, aborts, reorders, pending, to, recovered, epoch, members, srv.role())}
		for g, st := range srv.shards {
			lines = append(lines, shardStatsLine(snap, g, st))
		}
		return strings.Join(lines, "\n")
	}
	if cmd == "METRICS" {
		// Answered in every phase, like STATS: the registry exists from
		// process start. One series per line, histograms as summaries.
		snap := srv.metrics.Snapshot()
		lines := make([]string, 0, len(snap)+1)
		lines = append(lines, fmt.Sprintf("METRICS n=%d", len(snap)))
		for _, s := range snap {
			lines = append(lines, metricLine(s))
		}
		return strings.Join(lines, "\n")
	}
	if cmd == "TRACE" {
		if len(fields) != 2 {
			return "ERR TRACE needs a transaction id"
		}
		// Cluster-wide first: fan the query out through the obs station to
		// every current member and stitch their rings into one causally
		// ordered span set. Fall back to the local ring when the station
		// is not up yet (joining) or no peer had the trace.
		var evs []metrics.TraceEvent
		keys := traceTxnKeys(fields[1])
		if station := srv.station.Load(); station != nil {
			if tr := srv.shards[0].tracker.Load(); tr != nil {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				for _, key := range keys {
					if evs = station.Trace(ctx, key, tr.Members()); len(evs) > 0 {
						break
					}
				}
				cancel()
			}
		}
		if len(evs) == 0 {
			for _, key := range keys {
				if evs = srv.trace.Find(key); len(evs) > 0 {
					break
				}
			}
		}
		lines := make([]string, 0, len(evs)+1)
		lines = append(lines, fmt.Sprintf("TRACE n=%d", len(evs)))
		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				return "ERR " + err.Error()
			}
			lines = append(lines, string(b))
		}
		return strings.Join(lines, "\n")
	}
	if cmd == "SHARD" {
		if len(fields) < 2 {
			return "ERR SHARD needs LIST or MAP <class>"
		}
		switch strings.ToUpper(fields[1]) {
		case "LIST":
			return fmt.Sprintf("SHARDS n=%d version=%d", srv.smap.Shards(), srv.smap.Version())
		case "MAP":
			if len(fields) != 3 {
				return "ERR SHARD MAP needs a class"
			}
			return fmt.Sprintf("SHARD class=%s id=%d", fields[2], srv.smap.Locate(sproc.ClassID(fields[2])))
		default:
			return "ERR unknown SHARD subcommand " + fields[1]
		}
	}
	if srv.waitReady(30*time.Second) == nil {
		return "ERR replica still joining"
	}
	switch cmd {
	case "EXEC":
		if len(fields) < 2 {
			return "ERR EXEC needs a procedure"
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		start := time.Now()
		g, cross, err := cs.routeShard(fields[1])
		if err != nil {
			return "ERR " + err.Error()
		}
		if cross {
			res, err := srv.coord.Exec(ctx, fields[1], parseArgs(fields[2:])...)
			if err != nil {
				return "ERR " + err.Error()
			}
			return fmtCross(res, time.Since(start))
		}
		info, err := srv.shards[g].rep.Load().Exec(ctx, fields[1], parseArgs(fields[2:])...)
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmtCommit(info, time.Since(start))
	case "SUBMIT":
		if len(fields) < 2 {
			return "ERR SUBMIT needs a procedure"
		}
		g, cross, err := cs.routeShard(fields[1])
		if err != nil {
			return "ERR " + err.Error()
		}
		start := time.Now()
		h := &srvHandle{ch: make(chan string, 1)}
		if cross {
			// Cross-shard handles are keyed x.<n>: they have no single
			// broadcast identity, the coordinator spans groups.
			cs.crossSeq++
			key := fmt.Sprintf("x.%d", cs.crossSeq)
			cs.pending[key] = h
			args := parseArgs(fields[2:])
			proc := fields[1]
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				res, err := srv.coord.Exec(ctx, proc, args...)
				if err != nil {
					h.ch <- "ERR " + err.Error()
					return
				}
				h.ch <- fmtCross(res, time.Since(start))
			}()
			return "ID " + key
		}
		id, err := srv.shards[g].rep.Load().SubmitNotify(fields[1], parseArgs(fields[2:]),
			func(res db.CommitResult) {
				if res.Err != nil {
					h.ch <- "ERR " + res.Err.Error()
					return
				}
				h.ch <- fmtCommit(res.Info, time.Since(start))
			})
		if err != nil {
			return "ERR " + err.Error()
		}
		key := fmt.Sprintf("%d.%d", id.Origin, id.Seq)
		if len(srv.shards) > 1 {
			// Group-local sequence numbers collide across shards; qualify.
			key = fmt.Sprintf("%d.%d.%d", g, id.Origin, id.Seq)
		}
		cs.pending[key] = h
		return "ID " + key
	case "WAIT":
		if len(fields) != 2 {
			return "ERR WAIT needs an id"
		}
		h, ok := cs.pending[fields[1]]
		if !ok {
			return "ERR unknown handle " + fields[1] + " (SUBMIT on this connection first)"
		}
		select {
		case reply := <-h.ch:
			delete(cs.pending, fields[1])
			return reply
		case <-time.After(30 * time.Second):
			// Keep the handle: the reply channel is buffered, so a
			// retried WAIT can still collect the commit when it lands.
			return "ERR timeout waiting for " + fields[1]
		}
	case "QUERY":
		if len(fields) < 2 {
			return "ERR QUERY needs a procedure"
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		v, err := cs.query(ctx, fields[1], parseArgs(fields[2:]))
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("VALUE %d", storage.ValueInt64(v))
	case "DIGEST":
		if len(srv.shards) == 1 {
			return fmt.Sprintf("DIGEST %016x", srv.shards[0].rep.Load().Store().Digest())
		}
		digests := make([]string, len(srv.shards))
		for g, st := range srv.shards {
			digests[g] = fmt.Sprintf("%016x", st.rep.Load().Store().Digest())
		}
		return "DIGEST " + strings.Join(digests, " ")
	case "MEMBER":
		return cs.handleMember(fields[1:])
	default:
		return "ERR unknown command " + fields[0]
	}
}

// query runs a read-only procedure: directly on the single group, or —
// in sharded mode — over one pinned snapshot per shard group touched,
// opened lazily at first read (per-shard snapshot isolation).
func (cs *clientSession) query(ctx context.Context, name string, args []storage.Value) (storage.Value, error) {
	srv := cs.srv
	if len(srv.shards) == 1 {
		return srv.shards[0].rep.Load().Query(ctx, name, args...)
	}
	q, err := srv.reg.Query(name)
	if err != nil {
		return nil, err
	}
	mq := &multiQueryCtx{srv: srv, ctx: ctx, args: args, snaps: make(map[int]*db.QuerySnap)}
	defer mq.close()
	res, err := q.Fn(mq)
	if err != nil {
		return nil, err
	}
	if mq.err != nil {
		return nil, mq.err
	}
	return res, nil
}

// multiQueryCtx adapts per-shard QuerySnaps to sproc.QueryCtx, routing
// each read to the snapshot of the shard group owning its class.
type multiQueryCtx struct {
	srv   *server
	ctx   context.Context
	args  []storage.Value
	snaps map[int]*db.QuerySnap
	err   error
}

func (m *multiQueryCtx) Args() []storage.Value { return m.args }

func (m *multiQueryCtx) Read(class sproc.ClassID, key storage.Key) (storage.Value, bool) {
	if m.err != nil {
		return nil, false
	}
	g := m.srv.smap.Locate(class)
	snap := m.snaps[g]
	if snap == nil {
		rep := m.srv.shards[g].rep.Load()
		if rep == nil {
			m.err = fmt.Errorf("shard %d still joining", g)
			return nil, false
		}
		var err error
		snap, err = rep.BeginSnap(m.ctx)
		if err != nil {
			m.err = err
			return nil, false
		}
		m.snaps[g] = snap
	}
	v, ok := snap.Read(class, key)
	if e := snap.Err(); e != nil {
		m.err = e
		return nil, false
	}
	return v, ok
}

func (m *multiQueryCtx) close() {
	for _, snap := range m.snaps {
		snap.Close()
	}
}

// handleMember executes a membership change: the successor configuration
// is derived from this replica's current view and committed through the
// definitive order like any transaction — in every shard group, in shard
// order (shard g places the new member at the given address's port + g).
// A concurrent change loses the race with an epoch-conflict error; retry
// against the new STATUS.
//
//	MEMBER ADD <id> <addr>      admit a new site
//	MEMBER REMOVE <id>          shrink the group
//	MEMBER REPLACE <id> <addr>  re-admit a dead site's id at a new address
func (cs *clientSession) handleMember(args []string) string {
	srv := cs.srv
	if len(args) < 2 {
		return "ERR MEMBER needs ADD <id> <addr> | REMOVE <id> | REPLACE <id> <addr>"
	}
	id, err := strconv.Atoi(args[1])
	if err != nil {
		return "ERR bad site id " + args[1]
	}
	verb := strings.ToUpper(args[0])
	var reply string
	for g, st := range srv.shards {
		tr := st.tracker.Load()
		rep := st.rep.Load()
		if tr == nil || rep == nil {
			return fmt.Sprintf("ERR shard %d still joining", g)
		}
		addr := ""
		if len(args) == 3 {
			if addr, err = shiftAddr(args[2], g); err != nil {
				return "ERR " + err.Error()
			}
		}
		cur := tr.Config()
		var next member.Config
		switch verb {
		case "ADD":
			if len(args) != 3 {
				return "ERR MEMBER ADD needs <id> <addr>"
			}
			next, err = cur.WithAdd(member.Site{ID: transport.NodeID(id), Addr: addr})
		case "REMOVE":
			if len(args) != 2 {
				return "ERR MEMBER REMOVE needs <id>"
			}
			next, err = cur.WithRemove(transport.NodeID(id))
		case "REPLACE":
			if len(args) != 3 {
				return "ERR MEMBER REPLACE needs <id> <addr>"
			}
			next, err = cur.WithReplace(transport.NodeID(id), addr)
		default:
			return "ERR unknown MEMBER subcommand " + args[0]
		}
		if err != nil {
			return fmt.Sprintf("ERR shard %d: %s", g, err.Error())
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		info, err := rep.Exec(ctx, member.Proc, member.Encode(next))
		cancel()
		if err != nil {
			return fmt.Sprintf("ERR shard %d: %s", g, err.Error())
		}
		if g == 0 {
			reply = fmt.Sprintf("OK epoch=%d members=%d to=%d", next.Epoch, len(next.Members), info.TOIndex)
		}
	}
	return reply
}

// metricLine renders one registry series for the METRICS verb: scalars
// as `name{labels} value`, histograms as a count/quantile summary —
// durations via time.Duration strings, size histograms as raw integers.
func metricLine(s metrics.Sample) string {
	var labels string
	if len(s.Labels) > 0 {
		parts := make([]string, len(s.Labels))
		for i, l := range s.Labels {
			parts[i] = l.Key + "=" + l.Value
		}
		labels = "{" + strings.Join(parts, ",") + "}"
	}
	switch s.Kind {
	case metrics.KindHistogram:
		sum := s.Hist.Summarize()
		return fmt.Sprintf("%s%s count=%d p50=%s p95=%s p99=%s",
			s.Name, labels, sum.Count, sum.P50, sum.P95, sum.P99)
	case metrics.KindSizeHistogram:
		sum := s.Hist.Summarize()
		return fmt.Sprintf("%s%s count=%d p50=%d p95=%d p99=%d",
			s.Name, labels, sum.Count, int64(sum.P50), int64(sum.P95), int64(sum.P99))
	default:
		if s.Value == float64(int64(s.Value)) {
			return fmt.Sprintf("%s%s %d", s.Name, labels, int64(s.Value))
		}
		return fmt.Sprintf("%s%s %g", s.Name, labels, s.Value)
	}
}

// traceTxnKeys maps a client-facing transaction id — SUBMIT's
// "<origin>.<seq>" (or "<shard>.<origin>.<seq>" in sharded mode) — to
// the engine's MsgID string ("m<origin>.<seq>"); an engine-form id
// ("m...") or a cross-shard trace id ("tx...") passes through verbatim.
func traceTxnKeys(arg string) []string {
	if strings.HasPrefix(arg, "m") || strings.HasPrefix(arg, "t") {
		return []string{arg}
	}
	parts := strings.Split(arg, ".")
	switch len(parts) {
	case 2:
		return []string{"m" + arg}
	case 3:
		return []string{"m" + parts[1] + "." + parts[2]}
	}
	return []string{arg}
}

// parseArgs converts protocol arguments: decimal integers become Int64
// values, everything else a string value.
func parseArgs(args []string) []storage.Value {
	out := make([]storage.Value, len(args))
	for i, a := range args {
		if n, err := strconv.ParseInt(a, 10, 64); err == nil && i > 0 {
			out[i] = storage.Int64Value(n)
			continue
		}
		out[i] = storage.StringValue(a)
	}
	return out
}
