// Command otpd runs one replica of the replicated database over TCP — the
// multi-process deployment of the paper's architecture. Every replica
// serves a small line protocol for clients (see cmd/otpcli), the TCP
// incarnation of the in-process Session API: EXEC is Session.Exec with
// its typed result, SUBMIT/WAIT are Session.SubmitAsync plus Handle
// resolution, so clients pipeline many transactions per connection.
//
//	EXEC <procedure> [arg ...]   -> OK value=<int64> to=<idx> outcome=<fastpath|reordered|retried> latency=<dur>
//	                              | ERR <message>
//	SUBMIT <procedure> [arg ...] -> ID <origin>.<seq> | ERR <message>
//	WAIT <origin>.<seq>          -> OK ... (as EXEC) | ERR <message>
//	QUERY <procedure> [arg ...]  -> VALUE <int64> | ERR <message>
//	STATS (alias STATUS)         -> STATS commits=<n> aborts=<n> reorders=<n> pending=<n> to=<idx> recovered=<idx> epoch=<e> members=<n> role=<joining|serving|donor>
//	DIGEST                       -> DIGEST <hex>
//	MEMBER ADD <id> <addr>       -> OK epoch=<e> members=<n> to=<idx> | ERR <message>
//	MEMBER REMOVE <id>           -> OK ... (as ADD)
//	MEMBER REPLACE <id> <addr>   -> OK ... (as ADD)
//
// SUBMIT handles are per-connection: WAIT resolves an ID submitted on the
// same connection (pipeline SUBMITs first, then WAIT each ID). STATS is
// answered in every phase of the replica's life: role=joining while a
// state transfer is catching the replica up (to/recovered report the
// locally recovered index), serving once it processes transactions, and
// donor while it streams state to another joiner. Commands that need the
// replica (EXEC, QUERY, ...) wait for it to come up.
//
// The demo schema partitions an integer keyspace into -classes conflict
// classes with procedures add-p<i>(key, delta) — returning the key's new
// value — and the cross-class query get(p<i>, key).
//
// With -data the replica is durable: definitive commits are written
// ahead to a segmented CRC-framed log (fsync policy -fsync
// commit|group|off) with periodic checkpoints, the WAL is flushed and
// closed on SIGINT/SIGTERM, and a restarted process — even after kill
// -9 — recovers its committed state and resumes at the recovered
// definitive index.
//
// A durable replica that recovered committed state automatically rejoins
// a running cluster through the statex state-transfer service: it
// advertises its recovered index to a live peer (unsuspected peers
// first, failing over down the list) and receives either the definitive
// backlog it missed or, when the peers' retained history no longer
// covers the gap, a full checkpoint plus the tail — then re-enters
// consensus at the current stage. -join forces the same path for a
// replica with no usable local state. When no peer answers (for
// instance, a whole-cluster restart where every process comes up at
// once), the replica falls back to a cold start from local state alone.
//
// The group membership is dynamic: the configuration (an epoch plus the
// member list) is itself replicated state, seeded from -peers at epoch 1
// and changed through definitively-ordered MEMBER commands. Every
// replica switches its quorum, its failure-detector targets and its TCP
// peer links at the commit of the change. A permanently dead site is
// replaced without a whole-cluster restart: MEMBER REPLACE <id> <addr>
// on a survivor, then start a fresh process with that id, the updated
// -peers list and -join — it state-transfers from a donor and activates.
// A removed site keeps its process alive but is out of the group; stop
// it once MEMBER REMOVE returns.
//
// Example 3-replica cluster on one machine:
//
//	otpd -id 0 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 -client :7070 -data data/0 &
//	otpd -id 1 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 -client :7071 -data data/1 &
//	otpd -id 2 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 -client :7072 -data data/2 &
//	otpcli -addr :7070 EXEC add-p0 mykey 5
//	otpcli -addr :7071 QUERY get p0 mykey
//	kill -9 <pid of replica 2>; otpd -id 2 ... -data data/2 &   # rejoins live
//	# replica 2's machine died for good: replace it at a new address
//	otpcli -addr :7070 MEMBER REPLACE 2 127.0.0.1:9005
//	otpd -id 2 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9005 -client :7072 -data data2b/2 -join &
//	otpcli -addr :7072 STATUS
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"otpdb/internal/abcast"
	"otpdb/internal/consensus"
	"otpdb/internal/db"
	"otpdb/internal/fd"
	"otpdb/internal/member"
	"otpdb/internal/recovery"
	"otpdb/internal/sproc"
	"otpdb/internal/statex"
	"otpdb/internal/storage"
	"otpdb/internal/transport"
	"otpdb/internal/wal"
)

func main() {
	var (
		id      = flag.Int("id", 0, "replica id (index into -peers)")
		peers   = flag.String("peers", "", "comma-separated replica addresses, index = id")
		client  = flag.String("client", ":7070", "client listen address")
		classes = flag.Int("classes", 8, "number of conflict classes")
		dataDir = flag.String("data", "", "durability directory (empty = in-memory only)")
		fsync   = flag.String("fsync", "group", "WAL fsync policy: commit|group|off (with -data)")
		join    = flag.Bool("join", false, "force a state transfer from a live peer before serving")
	)
	flag.Parse()
	if err := run(*id, *peers, *client, *classes, *dataDir, *fsync, *join); err != nil {
		fmt.Fprintln(os.Stderr, "otpd:", err)
		os.Exit(1)
	}
}

// demoRegistry builds the keyspace schema: add-p<i>(key, delta) per
// class — returning the key's new value — plus the get(class, key) query.
func demoRegistry(classes int) (*sproc.Registry, error) {
	reg := sproc.NewRegistry()
	for c := 0; c < classes; c++ {
		class := sproc.ClassID(fmt.Sprintf("p%d", c))
		err := reg.RegisterUpdate(sproc.Update{
			Name:  "add-" + string(class),
			Class: class,
			Fn: func(ctx sproc.UpdateCtx) (storage.Value, error) {
				args := ctx.Args()
				if len(args) < 2 {
					return nil, fmt.Errorf("add needs key and delta")
				}
				key := storage.Key(storage.ValueString(args[0]))
				delta := storage.ValueInt64(args[1])
				cur, _ := ctx.Read(key)
				next := storage.Int64Value(storage.ValueInt64(cur) + delta)
				return next, ctx.Write(key, next)
			},
		})
		if err != nil {
			return nil, err
		}
	}
	if err := reg.RegisterQuery(sproc.Query{
		Name: "get",
		Fn: func(ctx sproc.QueryCtx) (storage.Value, error) {
			args := ctx.Args()
			if len(args) < 2 {
				return nil, fmt.Errorf("get needs class and key")
			}
			class := sproc.ClassID(storage.ValueString(args[0]))
			v, _ := ctx.Read(class, storage.Key(storage.ValueString(args[1])))
			return v, nil
		},
	}); err != nil {
		return nil, err
	}
	// Group membership rides the same machinery as user transactions.
	if err := member.RegisterProc(reg); err != nil {
		return nil, err
	}
	return reg, nil
}

// server is the per-process state the client protocol serves from. The
// replica appears only once recovery and any state transfer finish;
// STATS answers in every phase so operators (and tests) can watch a
// joiner catch up.
type server struct {
	rep     atomic.Pointer[db.Replica]
	xs      atomic.Pointer[statex.Server]
	tracker atomic.Pointer[member.Tracker]
	base    atomic.Int64  // locally recovered definitive index
	ready   chan struct{} // closed when rep is published
}

// membership renders the epoch/size STATS fields ("0 0" while joining).
func (s *server) membership() (uint64, int) {
	tr := s.tracker.Load()
	if tr == nil {
		return 0, 0
	}
	cfg := tr.Config()
	return cfg.Epoch, len(cfg.Members)
}

// waitReady blocks until the replica is up (recovery and state transfer
// done) or the timeout expires.
func (s *server) waitReady(d time.Duration) *db.Replica {
	select {
	case <-s.ready:
		return s.rep.Load()
	case <-time.After(d):
		return nil
	}
}

// role reports the replica's current life-cycle phase.
func (s *server) role() string {
	select {
	case <-s.ready:
	default:
		return "joining"
	}
	if xs := s.xs.Load(); xs != nil && xs.Serving() > 0 {
		return "donor"
	}
	return "serving"
}

// donorOrder lists candidate state-transfer donors: every group member
// but ourselves, unsuspected ones first. Right after startup the
// detector has heard nobody, so the order degenerates to id order and
// Fetch's per-donor timeout skims past dead peers.
func donorOrder(d *fd.Detector, self transport.NodeID, ids []transport.NodeID) []transport.NodeID {
	var live, suspect []transport.NodeID
	for _, id := range ids {
		if id == self {
			continue
		}
		if d.Suspected(id) {
			suspect = append(suspect, id)
		} else {
			live = append(live, id)
		}
	}
	return append(live, suspect...)
}

func run(id int, peerList, clientAddr string, classes int, dataDir, fsync string, forceJoin bool) error {
	if peerList == "" {
		return fmt.Errorf("-peers is required")
	}
	parts := strings.Split(peerList, ",")
	addrs := make(map[transport.NodeID]string, len(parts))
	for i, addr := range parts {
		addrs[transport.NodeID(i)] = strings.TrimSpace(addr)
	}
	if id < 0 || id >= len(parts) {
		return fmt.Errorf("-id %d out of range for %d peers", id, len(parts))
	}
	if forceJoin && len(parts) < 2 {
		return fmt.Errorf("-join needs at least one peer to join from")
	}

	// Wire registration for the gob codec.
	fd.RegisterWire()
	consensus.RegisterWire()
	abcast.RegisterWire()
	db.RegisterWire()
	statex.RegisterWire()

	node, err := transport.ListenTCP(transport.TCPConfig{
		ID:    transport.NodeID(id),
		Addrs: addrs,
	})
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()

	detector := fd.New(node, fd.Config{Interval: 100 * time.Millisecond})
	detector.Start()
	defer detector.Stop()

	// The client listener comes up before the replica so STATS can
	// report the joining phase; commands that need the replica wait.
	srv := &server{ready: make(chan struct{})}
	ln, err := net.Listen("tcp", clientAddr)
	if err != nil {
		return fmt.Errorf("client listen: %w", err)
	}
	defer func() { _ = ln.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		cancel()
		_ = ln.Close()
	}()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-ctx.Done():
					return // shutting down
				default:
				}
				// Transient failure (e.g. fd exhaustion): keep the
				// replica's client port alive rather than silently
				// refusing all future connections.
				time.Sleep(50 * time.Millisecond)
				continue
			}
			go serveClient(conn, srv)
		}
	}()

	// Local recovery: a durable replica replays checkpoint + WAL tail
	// and resumes at the recovered definitive index. The group
	// configuration is seeded from -peers at version 0; recovered or
	// transferred state carrying a newer committed configuration
	// overrides the seed, so the replica lands in the correct epoch.
	reg, err := demoRegistry(classes)
	if err != nil {
		return err
	}
	bootstrap := member.Bootstrap(addrs)
	store := storage.NewStore()
	member.Seed(store, bootstrap)
	base := int64(0)
	var dur *recovery.Durability
	if dataDir != "" {
		policy, perr := wal.ParseSyncPolicy(fsync)
		if perr != nil {
			return perr
		}
		d, derr := recovery.Open(dataDir, recovery.Options{Sync: policy})
		if derr != nil {
			return derr
		}
		b, rerr := d.Recover(store)
		if rerr != nil {
			_ = d.Close()
			return rerr
		}
		dur, base = d, b
		fmt.Printf("otpd: replica %d recovered to commit index %d (fsync=%s)\n", id, base, policy)
	}
	srv.base.Store(base)

	// The membership tracker is primed from the committed configuration
	// the store now holds — the -peers seed for a fresh start, the
	// recovered one otherwise — and retargets the transport mesh and the
	// failure detector on every epoch change, including right now: the
	// recovered configuration may already disagree with -peers (peers
	// replaced at new addresses while we were down), and both the join
	// probe below and the consensus view must follow the committed
	// membership, not the stale command line.
	mcfg, err := member.CommittedConfig(store)
	if err != nil {
		return fmt.Errorf("membership: %w", err)
	}
	applyMembership := func(cfg member.Config) {
		node.SetPeers(cfg.Addrs())
		detector.SetMembers(cfg.IDs())
		fmt.Printf("otpd: replica %d membership %s\n", id, cfg)
	}
	tracker := member.NewTracker(mcfg)
	tracker.OnChange(applyMembership)
	applyMembership(mcfg)
	srv.tracker.Store(tracker)

	// State transfer: a durable replica that recovered committed state
	// assumes the cluster kept running and catches up from a live peer;
	// -join forces the same for a replica with no local state. A cluster
	// where every process restarts together has no donor to answer, so
	// the probe times out and the replica falls back to a cold start.
	var joinState *abcast.JoinState
	if len(parts) > 1 && (forceJoin || base > 0) {
		fmt.Printf("otpd: replica %d joining: advertising recovered index %d to peers\n", id, base)
		// Two probe rounds: the second catches a staggered restart where
		// the first round raced the donors' own startup.
		var xfer *statex.Transfer
		var jerr error
		for attempt := 0; attempt < 2; attempt++ {
			xfer, jerr = statex.Fetch(ctx, node, base, donorOrder(detector, transport.NodeID(id), tracker.Members()),
				statex.Options{RespTimeout: 3 * time.Second})
			if jerr == nil || ctx.Err() != nil {
				break
			}
		}
		switch {
		case jerr == nil:
			if xfer.Mode == statex.CheckpointTail {
				store = storage.NewStore()
				store.InstallCheckpoint(xfer.Checkpoint)
				base = xfer.Base
				srv.base.Store(base)
				if dur != nil {
					// Local history is obsolete below the transferred
					// checkpoint; reset the directory to it.
					if rerr := dur.ResetTo(xfer.Checkpoint); rerr != nil {
						_ = dur.Close()
						return rerr
					}
				}
				// The transferred checkpoint may carry a newer committed
				// configuration than local recovery did; follow it before
				// consensus starts.
				if nc, cerr := member.CommittedConfig(store); cerr == nil {
					tracker.Apply(nc)
				}
			}
			joinState = &xfer.Join
			fmt.Printf("otpd: replica %d state transfer from %v: %s, base %d, backlog %d, resume stage %d\n",
				id, xfer.Donor, xfer.Mode, base, len(xfer.Join.Backlog), xfer.Join.StartStage)
		case forceJoin:
			if dur != nil {
				_ = dur.Close()
			}
			return fmt.Errorf("join: %w", jerr)
		default:
			// Correct for a whole-cluster restart (nobody was serving,
			// every replica cold-starts from the same index); wrong if
			// the cluster actually kept running — this replica would
			// re-enter ordering misaligned with the survivors. Make the
			// fallback loud so the operator can tell which one happened.
			fmt.Printf("otpd: WARNING: replica %d found no live donor; cold-starting from local state.\n", id)
			fmt.Printf("otpd: WARNING: safe only if all replicas restart together — if the cluster is still running, stop this replica and restart it with -join\n")
			fmt.Printf("otpd: (join error: %v)\n", jerr)
		}
	}

	ccfg := consensus.Config{
		Endpoint:     node,
		Suspector:    detector,
		RoundTimeout: 250 * time.Millisecond,
		View:         tracker,
	}
	if joinState != nil {
		ccfg.CatchUpFrom = joinState.StartStage
	}
	cons := consensus.New(ccfg)
	cons.Start()
	defer cons.Stop()

	aopts := []abcast.Option{abcast.WithDefBase(uint64(base))}
	if joinState != nil {
		aopts = append(aopts, abcast.WithJoin(*joinState))
	}
	bc := abcast.NewOptimistic(node, cons, aopts...)
	if err := bc.Start(); err != nil {
		return err
	}
	defer func() { _ = bc.Stop() }()

	cfg := db.Config{
		ID:          transport.NodeID(id),
		Broadcast:   bc,
		Registry:    reg,
		Store:       store,
		ConfigClass: member.Class,
		OnConfigCommit: func(v storage.Value, _ int64) {
			if next, derr := member.Decode(v); derr == nil {
				tracker.Apply(next)
			}
		},
	}
	if dur != nil {
		// The replica owns the handle and flushes/closes the WAL on
		// Stop, so the SIGINT/SIGTERM path never drops the log tail.
		cfg.Durability = dur
		cfg.InitialTOIndex = base
	}
	rep, err := db.New(cfg)
	if err != nil {
		return err
	}
	rep.Start()
	defer rep.Stop()

	// Serve state transfers to future joiners.
	xs := statex.NewServer(node, statex.ReplicaSource{Replica: rep, Engine: bc})
	xs.Start()
	defer xs.Stop()

	srv.rep.Store(rep)
	srv.xs.Store(xs)
	close(srv.ready)
	fmt.Printf("otpd: replica %d up — peers %s, clients on %s\n", id, peerList, ln.Addr())

	<-ctx.Done()
	return nil
}

// srvHandle is one in-flight SUBMIT on a client connection: the
// server-side analogue of an otpdb.Handle, resolved by the replica's
// commit notification.
type srvHandle struct {
	start time.Time
	ch    chan db.CommitResult // buffered, resolved exactly once
}

// clientSession is the per-connection state: pending SUBMIT handles
// awaiting WAIT.
type clientSession struct {
	srv     *server
	pending map[string]*srvHandle
}

// serveClient speaks the line protocol on one client connection.
func serveClient(conn net.Conn, srv *server) {
	defer func() { _ = conn.Close() }()
	cs := &clientSession{srv: srv, pending: make(map[string]*srvHandle)}
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		reply := cs.handle(strings.Fields(sc.Text()))
		_, _ = w.WriteString(reply + "\n")
		_ = w.Flush()
	}
}

// fmtCommit renders a commit outcome in the EXEC/WAIT reply shape.
func fmtCommit(info db.CommitInfo, latency time.Duration) string {
	outcome := "fastpath"
	switch {
	case info.Retried:
		outcome = "retried"
	case info.Reordered:
		outcome = "reordered"
	}
	return fmt.Sprintf("OK value=%d to=%d outcome=%s latency=%s",
		storage.ValueInt64(info.Value), info.TOIndex, outcome,
		latency.Round(time.Microsecond))
}

func (cs *clientSession) handle(fields []string) string {
	if len(fields) == 0 {
		return "ERR empty command"
	}
	cmd := strings.ToUpper(fields[0])
	if cmd == "STATS" || cmd == "STATUS" {
		// Answered in every phase: a joiner reports its progress before
		// the replica exists.
		srv := cs.srv
		base := srv.base.Load()
		epoch, members := srv.membership()
		rep := srv.rep.Load()
		if rep == nil {
			return fmt.Sprintf("STATS commits=0 aborts=0 reorders=0 pending=0 to=%d recovered=%d epoch=%d members=%d role=%s",
				base, base, epoch, members, srv.role())
		}
		st := rep.Manager().Stats()
		return fmt.Sprintf("STATS commits=%d aborts=%d reorders=%d pending=%d to=%d recovered=%d epoch=%d members=%d role=%s",
			st.Commits, st.Aborts, st.Reorders, rep.Manager().Pending(),
			rep.LastTO(), base, epoch, members, srv.role())
	}
	rep := cs.srv.waitReady(30 * time.Second)
	if rep == nil {
		return "ERR replica still joining"
	}
	switch cmd {
	case "EXEC":
		if len(fields) < 2 {
			return "ERR EXEC needs a procedure"
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		start := time.Now()
		info, err := rep.Exec(ctx, fields[1], parseArgs(fields[2:])...)
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmtCommit(info, time.Since(start))
	case "SUBMIT":
		if len(fields) < 2 {
			return "ERR SUBMIT needs a procedure"
		}
		h := &srvHandle{start: time.Now(), ch: make(chan db.CommitResult, 1)}
		id, err := rep.SubmitNotify(fields[1], parseArgs(fields[2:]),
			func(res db.CommitResult) { h.ch <- res })
		if err != nil {
			return "ERR " + err.Error()
		}
		key := fmt.Sprintf("%d.%d", id.Origin, id.Seq)
		cs.pending[key] = h
		return "ID " + key
	case "WAIT":
		if len(fields) != 2 {
			return "ERR WAIT needs an id"
		}
		h, ok := cs.pending[fields[1]]
		if !ok {
			return "ERR unknown handle " + fields[1] + " (SUBMIT on this connection first)"
		}
		select {
		case res := <-h.ch:
			delete(cs.pending, fields[1])
			if res.Err != nil {
				return "ERR " + res.Err.Error()
			}
			return fmtCommit(res.Info, time.Since(h.start))
		case <-time.After(30 * time.Second):
			// Keep the handle: the result channel is buffered, so a
			// retried WAIT can still collect the commit when it lands.
			return "ERR timeout waiting for " + fields[1]
		}
	case "QUERY":
		if len(fields) < 2 {
			return "ERR QUERY needs a procedure"
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		v, err := rep.Query(ctx, fields[1], parseArgs(fields[2:])...)
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("VALUE %d", storage.ValueInt64(v))
	case "DIGEST":
		return fmt.Sprintf("DIGEST %016x", rep.Store().Digest())
	case "MEMBER":
		return cs.handleMember(rep, fields[1:])
	default:
		return "ERR unknown command " + fields[0]
	}
}

// handleMember executes a membership change: the successor configuration
// is derived from this replica's current view and committed through the
// definitive order like any transaction. A concurrent change loses the
// race with an epoch-conflict error; retry against the new STATUS.
//
//	MEMBER ADD <id> <addr>      admit a new site
//	MEMBER REMOVE <id>          shrink the group
//	MEMBER REPLACE <id> <addr>  re-admit a dead site's id at a new address
func (cs *clientSession) handleMember(rep *db.Replica, args []string) string {
	tr := cs.srv.tracker.Load()
	if tr == nil {
		return "ERR replica still joining"
	}
	if len(args) < 2 {
		return "ERR MEMBER needs ADD <id> <addr> | REMOVE <id> | REPLACE <id> <addr>"
	}
	id, err := strconv.Atoi(args[1])
	if err != nil {
		return "ERR bad site id " + args[1]
	}
	cur := tr.Config()
	var next member.Config
	switch strings.ToUpper(args[0]) {
	case "ADD":
		if len(args) != 3 {
			return "ERR MEMBER ADD needs <id> <addr>"
		}
		next, err = cur.WithAdd(member.Site{ID: transport.NodeID(id), Addr: args[2]})
	case "REMOVE":
		if len(args) != 2 {
			return "ERR MEMBER REMOVE needs <id>"
		}
		next, err = cur.WithRemove(transport.NodeID(id))
	case "REPLACE":
		if len(args) != 3 {
			return "ERR MEMBER REPLACE needs <id> <addr>"
		}
		next, err = cur.WithReplace(transport.NodeID(id), args[2])
	default:
		return "ERR unknown MEMBER subcommand " + args[0]
	}
	if err != nil {
		return "ERR " + err.Error()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := rep.Exec(ctx, member.Proc, member.Encode(next))
	if err != nil {
		return "ERR " + err.Error()
	}
	return fmt.Sprintf("OK epoch=%d members=%d to=%d", next.Epoch, len(next.Members), info.TOIndex)
}

// parseArgs converts protocol arguments: decimal integers become Int64
// values, everything else a string value.
func parseArgs(args []string) []storage.Value {
	out := make([]storage.Value, len(args))
	for i, a := range args {
		if n, err := strconv.ParseInt(a, 10, 64); err == nil && i > 0 {
			out[i] = storage.Int64Value(n)
			continue
		}
		out[i] = storage.StringValue(a)
	}
	return out
}
