package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestShardSmoke boots a sharded otpd (-shards 2 on one durable
// replica), routes single-shard and cross-shard transactions through the
// client protocol, checks the sharded STATS/DIGEST/SHARD verbs, then
// kill -9s the process and verifies both shards recover and the
// cross-shard transfer still runs.
func TestShardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "otpd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Shard g's mesh listens on the peer port + g, so the replica needs
	// two consecutive free ports.
	peerAddr := freeAddrRun(t, 2)
	clientAddr := freeAddr(t)
	dataDir := filepath.Join(tmp, "data")
	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-id", "0",
			"-peers", peerAddr,
			"-client", clientAddr,
			"-shards", "2",
			"-data", dataDir,
			"-fsync", "commit",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start otpd: %v", err)
		}
		return cmd
	}

	proc := start()
	defer func() { _ = proc.Process.Kill() }()
	pc := newProtoConn(t, clientAddr)

	// Single-shard transactions land on their home groups (p0 -> shard
	// 0, p1 -> shard 1 with the i mod S pinning).
	if got := pc.execValue("EXEC add-p0 a 5"); got != 5 {
		t.Fatalf("add-p0 = %d, want 5", got)
	}
	if got := pc.execValue("EXEC add-p1 b 3"); got != 3 {
		t.Fatalf("add-p1 = %d, want 3", got)
	}
	// The two-class demo transfer spans both shards: 2 moves from p0/a
	// to p1/b, committed in both groups or neither.
	reply := pc.roundTrip("EXEC xfer a b 2")
	if !strings.HasPrefix(reply, "OK ") || !strings.Contains(reply, "xto=") {
		t.Fatalf("xfer reply: %q", reply)
	}
	if got := pc.queryValue("QUERY get p0 a"); got != 3 {
		t.Fatalf("p0/a after xfer = %d, want 3", got)
	}
	if got := pc.queryValue("QUERY get p1 b"); got != 5 {
		t.Fatalf("p1/b after xfer = %d, want 5", got)
	}

	// Shard-aware admin verbs.
	if reply := pc.roundTrip("SHARD LIST"); !strings.HasPrefix(reply, "SHARDS n=2") {
		t.Fatalf("SHARD LIST reply: %q", reply)
	}
	if reply := pc.roundTrip("SHARD MAP p1"); reply != "SHARD class=p1 id=1" {
		t.Fatalf("SHARD MAP reply: %q", reply)
	}
	if reply := pc.roundTrip("DIGEST"); len(strings.Fields(reply)) != 3 {
		t.Fatalf("DIGEST reply (want 2 shard digests): %q", reply)
	}
	stats := pc.multiLine("STATS")
	if len(stats) != 3 || !strings.Contains(stats[0], "shards=2") {
		t.Fatalf("sharded STATS reply: %q", stats)
	}
	for g, line := range stats[1:] {
		if !strings.HasPrefix(line, fmt.Sprintf("SHARD id=%d ", g)) ||
			!strings.Contains(line, "role=serving") {
			t.Fatalf("SHARD stats line %d: %q", g, line)
		}
	}

	// Kill -9 and restart on the same directory: both shard groups must
	// recover their committed state.
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = proc.Wait()
	pc.close()

	proc2 := start()
	defer func() { _ = proc2.Process.Kill() }()
	pc2 := newProtoConn(t, clientAddr)
	defer pc2.close()

	if got := pc2.queryValue("QUERY get p0 a"); got != 3 {
		t.Fatalf("recovered p0/a = %d, want 3", got)
	}
	if got := pc2.queryValue("QUERY get p1 b"); got != 5 {
		t.Fatalf("recovered p1/b = %d, want 5", got)
	}
	// The recovered cluster keeps committing cross-shard transactions.
	reply = pc2.roundTrip("EXEC xfer a b 1")
	if !strings.HasPrefix(reply, "OK value=2 ") {
		t.Fatalf("post-restart xfer reply: %q", reply)
	}
	if got := pc2.queryValue("QUERY get p1 b"); got != 6 {
		t.Fatalf("p1/b after recovered xfer = %d, want 6", got)
	}
}

// freeAddrRun grabs an ephemeral 127.0.0.1 port with n-1 consecutive
// free ports above it (a sharded replica's meshes stack upward from the
// peer port).
func freeAddrRun(t *testing.T, n int) string {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		base, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := base.Addr().String()
		_ = base.Close()
		host, portStr, _ := net.SplitHostPort(addr)
		port, _ := strconv.Atoi(portStr)
		free := true
		for i := 1; i < n; i++ {
			ln, err := net.Listen("tcp", net.JoinHostPort(host, strconv.Itoa(port+i)))
			if err != nil {
				free = false
				break
			}
			_ = ln.Close()
		}
		if free {
			return addr
		}
	}
	t.Fatal("no run of consecutive free ports found")
	return ""
}

// protoConn is a client-protocol connection with a persistent read
// buffer, so multi-line replies (sharded STATS) are not lost between
// round trips.
type protoConn struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func newProtoConn(t *testing.T, addr string) *protoConn {
	t.Helper()
	return &protoConn{t: t, conn: dialRetry(t, addr), r: nil}
}

func (p *protoConn) close() { _ = p.conn.Close() }

func (p *protoConn) readLine() string {
	p.t.Helper()
	if p.r == nil {
		p.r = bufio.NewReader(p.conn)
	}
	line, err := p.r.ReadString('\n')
	if err != nil {
		p.t.Fatalf("read reply: %v", err)
	}
	return strings.TrimSpace(line)
}

func (p *protoConn) send(line string) {
	p.t.Helper()
	_ = p.conn.SetDeadline(time.Now().Add(30 * time.Second))
	if _, err := fmt.Fprintf(p.conn, "%s\n", line); err != nil {
		p.t.Fatalf("send %q: %v", line, err)
	}
}

func (p *protoConn) roundTrip(line string) string {
	p.t.Helper()
	p.send(line)
	return p.readLine()
}

// multiLine sends a command whose reply announces its continuation
// lines — STATS (shards=N, one SHARD line per group) or METRICS/TRACE
// (n=N) — and collects them all.
func (p *protoConn) multiLine(line string) []string {
	p.t.Helper()
	p.send(line)
	head := p.readLine()
	out := []string{head}
	n := 0
	for _, f := range strings.Fields(head) {
		if v, ok := strings.CutPrefix(f, "shards="); ok {
			n, _ = strconv.Atoi(v)
		}
		if v, ok := strings.CutPrefix(f, "n="); ok {
			n, _ = strconv.Atoi(v)
		}
	}
	for i := 0; i < n; i++ {
		out = append(out, p.readLine())
	}
	return out
}

func (p *protoConn) execValue(line string) int64 {
	p.t.Helper()
	reply := p.roundTrip(line)
	if !strings.HasPrefix(reply, "OK ") {
		p.t.Fatalf("%q reply: %q", line, reply)
	}
	for _, field := range strings.Fields(reply) {
		if v, ok := strings.CutPrefix(field, "value="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				p.t.Fatalf("%q value %q: %v", line, v, err)
			}
			return n
		}
	}
	p.t.Fatalf("%q reply without value: %q", line, reply)
	return 0
}

func (p *protoConn) queryValue(line string) int64 {
	p.t.Helper()
	reply := p.roundTrip(line)
	val, ok := strings.CutPrefix(reply, "VALUE ")
	if !ok {
		p.t.Fatalf("%q reply: %q", line, reply)
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		p.t.Fatalf("%q value %q: %v", line, val, err)
	}
	return n
}
