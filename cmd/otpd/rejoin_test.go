package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"otpdb/internal/testutil"
)

// TestKill9Rejoin is the acceptance test for transport-native state
// transfer: a 3-process durable otpd cluster loses one replica to
// SIGKILL, the survivors keep committing, and the restarted process —
// same flags, no whole-cluster restart — rejoins through statex, reaches
// a matching digest, and serves EXEC/QUERY again.
func TestKill9Rejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "otpd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const n = 3
	peerAddrs := make([]string, n)
	clientAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		peerAddrs[i] = freeAddr(t)
		clientAddrs[i] = freeAddr(t)
	}
	peers := strings.Join(peerAddrs, ",")
	start := func(i int) *exec.Cmd {
		cmd := exec.Command(bin,
			"-id", fmt.Sprint(i),
			"-peers", peers,
			"-client", clientAddrs[i],
			"-data", filepath.Join(tmp, fmt.Sprintf("data-%d", i)),
			"-fsync", "commit",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start otpd %d: %v", i, err)
		}
		return cmd
	}

	procs := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		procs[i] = start(i)
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				_ = p.Process.Kill()
			}
		}
	}()

	conn0 := dialRetry(t, clientAddrs[0])
	defer func() { _ = conn0.Close() }()

	// Phase 1: acknowledged load through replica 0 with all three up.
	const phase1 = 25
	for i := 0; i < phase1; i++ {
		execAdd(t, conn0, "k", 1)
	}

	// Let the victim catch up before killing it: EXEC acknowledges at
	// the submitting site only, and on a starved CI machine replica 2
	// can lag the whole phase — the test wants a victim with durable
	// local state, so the restart exercises recovery + tail transfer.
	victim := 2
	{
		vc := dialRetry(t, clientAddrs[victim])
		testutil.Eventually(t, 60*time.Second, "victim to catch up before the crash", func() bool {
			return statField(t, roundTrip(t, vc, "STATS"), "commits") >= phase1
		})
		_ = vc.Close()
	}

	// Kill -9 replica 2; the survivors form a majority and keep serving.
	if err := procs[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_, _ = procs[victim].Process.Wait()
	const phase2 = 25
	for i := 0; i < phase2; i++ {
		execAdd(t, conn0, "k", 1)
	}

	// Restart the victim with the same flags: it must recover its local
	// state, fetch the missed tail from a live donor, and start serving
	// — no other process is restarted.
	procs[victim] = start(victim)
	conn2 := dialRetry(t, clientAddrs[victim])
	defer func() { _ = conn2.Close() }()

	stats := waitServing(t, conn2, 60*time.Second)
	if rec := statField(t, stats, "recovered"); rec <= 0 {
		t.Fatalf("restarted replica reports recovered=%d, expected durable local state (STATS %q)", rec, stats)
	}

	// The restarted replica serves reads and writes in agreement with
	// the survivors: the counter continues exactly where the cluster is.
	want := int64(phase1 + phase2 + 1)
	if got := execAdd(t, conn2, "k", 1); got != want {
		t.Fatalf("post-rejoin commit at restarted replica = %d, want %d", got, want)
	}
	if got := queryGet(t, conn2, "p0", "k"); got != want {
		t.Fatalf("post-rejoin query at restarted replica = %d, want %d", got, want)
	}

	// All three replicas converge to one digest while every process
	// keeps running.
	conn1 := dialRetry(t, clientAddrs[1])
	defer func() { _ = conn1.Close() }()
	var d0, d1, d2 string
	testutil.EventuallyOr(t, 60*time.Second, "digests to converge", func() bool {
		d0 = digest(t, conn0)
		d1 = digest(t, conn1)
		d2 = digest(t, conn2)
		return d0 == d1 && d1 == d2
	}, func() {
		t.Logf("last digests: %s / %s / %s", d0, d1, d2)
	})

	// And the survivors were never restarted: they still answer on the
	// connections opened before the crash.
	if got := execAdd(t, conn0, "k", 1); got != want+1 {
		t.Fatalf("survivor commit after rejoin = %d, want %d", got, want+1)
	}
}

// waitServing waits until the replica reports role=serving (or donor,
// which implies serving) and returns the final STATS line.
func waitServing(t *testing.T, conn net.Conn, timeout time.Duration) string {
	t.Helper()
	var reply string
	testutil.EventuallyOr(t, timeout, "replica to reach role=serving", func() bool {
		reply = roundTrip(t, conn, "STATS")
		return strings.Contains(reply, "role=serving") || strings.Contains(reply, "role=donor")
	}, func() {
		t.Logf("last STATS: %q", reply)
	})
	return reply
}

// statField extracts an integer key=value field from a STATS reply.
func statField(t *testing.T, reply, key string) int64 {
	t.Helper()
	for _, f := range strings.Fields(reply) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			var n int64
			if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
				t.Fatalf("STATS field %s=%q: %v", key, v, err)
			}
			return n
		}
	}
	t.Fatalf("STATS reply without %s=: %q", key, reply)
	return 0
}

// digest fetches the DIGEST reply.
func digest(t *testing.T, conn net.Conn) string {
	t.Helper()
	reply := roundTrip(t, conn, "DIGEST")
	if !strings.HasPrefix(reply, "DIGEST ") {
		t.Fatalf("DIGEST reply: %q", reply)
	}
	return strings.TrimPrefix(reply, "DIGEST ")
}
