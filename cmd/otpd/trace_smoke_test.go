package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"otpdb/internal/testutil"
)

// TestTraceSmokeCluster is the multi-process half of the distributed
// tracing acceptance check (the in-process half is the root package's
// TestCrossShardTraceStitch): a 3-process, 2-shard TCP cluster runs a
// cross-shard transfer, the EXEC reply feeds back the cluster-wide
// trace ID, and TRACE <id> at the origin fans out through the obs
// stations and returns one stitched span set covering submit through
// commit with spans recorded at all three sites. CI runs this same
// test as its trace-propagation smoke step.
func TestTraceSmokeCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "otpd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Each sharded process owns two consecutive peer ports (mesh g on
	// base+g).
	const n = 3
	peerAddrs := make([]string, n)
	clientAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		peerAddrs[i] = freeAddrRun(t, 2)
		clientAddrs[i] = freeAddr(t)
	}
	peers := strings.Join(peerAddrs, ",")
	procs := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin,
			"-id", fmt.Sprint(i),
			"-peers", peers,
			"-client", clientAddrs[i],
			"-shards", "2",
			"-data", filepath.Join(tmp, fmt.Sprintf("data-%d", i)),
			"-fsync", "commit",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start otpd %d: %v", i, err)
		}
		procs[i] = cmd
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				_ = p.Process.Kill()
			}
		}
	}()

	pc := newProtoConn(t, clientAddrs[0])
	defer pc.close()

	// Seed both shards, then run the canonical cross-shard transfer; its
	// reply feeds the cluster-wide trace ID back.
	if got := pc.execValue("EXEC add-p0 a 5"); got != 5 {
		t.Fatalf("add-p0 = %d, want 5", got)
	}
	if got := pc.execValue("EXEC add-p1 b 3"); got != 3 {
		t.Fatalf("add-p1 = %d, want 3", got)
	}
	reply := pc.roundTrip("EXEC xfer a b 2")
	if !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("xfer reply: %q", reply)
	}
	var trace string
	for _, f := range strings.Fields(reply) {
		if v, ok := strings.CutPrefix(f, "trace="); ok {
			trace = v
		}
	}
	if trace == "" {
		t.Fatalf("xfer reply carries no trace=: %q", reply)
	}

	// The remote sites record their spans as the decision reaches them;
	// re-stitch until all three sites appear (or the deadline says the
	// fan-out is broken).
	var sites map[int]bool
	var spans map[string]bool
	var lines []string
	testutil.EventuallyOr(t, 10*time.Second, "stitched trace to cover 3 sites", func() bool {
		lines = pc.multiLine("TRACE " + trace)
		sites, spans = map[int]bool{}, map[string]bool{}
		for _, line := range lines[1:] {
			var ev struct {
				Trace string `json:"trace"`
				Span  string `json:"span"`
				Site  int    `json:"site"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("TRACE line %q: %v", line, err)
			}
			if ev.Trace != trace {
				t.Fatalf("stitched span with foreign trace %q in %q", ev.Trace, line)
			}
			sites[ev.Site] = true
			spans[ev.Span] = true
		}
		return len(sites) >= 3 && spans["commit"]
	}, func() {
		t.Logf("last reply:\n%s", strings.Join(lines, "\n"))
	})
	for _, want := range []string{
		"x-submit", "submit", "opt-deliver", "to-deliver",
		"prepare", "vote", "decide", "x-commit", "commit",
	} {
		if !spans[want] {
			t.Fatalf("stitched trace missing span %q; have %v in\n%s",
				want, spans, strings.Join(lines, "\n"))
		}
	}
}
