package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestObservability drives a real durable otpd process and checks its
// three telemetry surfaces agree:
//
//   - STATS stays byte-identical to its historic shape (golden) while
//     being rendered from the metrics registry,
//   - -http serves the registry at /metrics in the Prometheus text
//     format with the headline families present,
//   - the METRICS and TRACE verbs dump the registry and a
//     transaction's lifecycle spans over the client protocol.
func TestObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "otpd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	peerAddr := freeAddr(t)
	clientAddr := freeAddr(t)
	httpAddr := freeAddr(t)
	cmd := exec.Command(bin,
		"-id", "0",
		"-peers", peerAddr,
		"-client", clientAddr,
		"-data", filepath.Join(tmp, "data"),
		"-fsync", "commit",
		"-http", httpAddr,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start otpd: %v", err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	pc := newProtoConn(t, clientAddr)
	defer pc.close()

	const commits = 5
	for i := 0; i < commits; i++ {
		if reply := pc.roundTrip("EXEC add-p0 k 1"); !strings.HasPrefix(reply, "OK ") {
			t.Fatalf("EXEC reply: %q", reply)
		}
	}

	// STATS golden: the exact single-shard line shape every prior
	// release printed, now sourced from the registry's Func collectors.
	want := fmt.Sprintf("STATS commits=%d aborts=0 reorders=0 pending=0 to=%d recovered=0 epoch=1 members=1 role=serving",
		commits, commits)
	if got := pc.roundTrip("STATS"); got != want {
		t.Fatalf("STATS golden mismatch:\n got %q\nwant %q", got, want)
	}

	// TRACE: a SUBMITted transaction's lifecycle spans come back as one
	// JSON event per line, covering submit through commit.
	reply := pc.roundTrip("SUBMIT add-p0 k 1")
	id, ok := strings.CutPrefix(reply, "ID ")
	if !ok {
		t.Fatalf("SUBMIT reply: %q", reply)
	}
	if reply := pc.roundTrip("WAIT " + id); !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("WAIT reply: %q", reply)
	}
	spans := pc.multiLine("TRACE " + id)
	if len(spans) < 2 {
		t.Fatalf("TRACE %s returned no spans: %v", id, spans)
	}
	seen := make(map[string]bool)
	for _, line := range spans[1:] {
		var ev struct {
			Txn  string `json:"txn"`
			Span string `json:"span"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("TRACE line %q: %v", line, err)
		}
		seen[ev.Span] = true
	}
	for _, span := range []string{"submit", "opt-deliver", "to-deliver", "commit"} {
		if !seen[span] {
			t.Fatalf("TRACE %s missing span %q in %v", id, span, spans)
		}
	}

	// METRICS verb: the registry dump carries the scheduler counters
	// STATS is rendered from.
	series := pc.multiLine("METRICS")
	if len(series) < 2 {
		t.Fatalf("METRICS returned no series: %v", series)
	}
	dump := strings.Join(series[1:], "\n")
	for _, name := range []string{"otp_commits_total", "otp_reorder_total", "wal_fsync_seconds"} {
		if !strings.Contains(dump, name) {
			t.Fatalf("METRICS dump missing %s:\n%s", name, dump)
		}
	}

	// /metrics scrape: Prometheus text format with the headline
	// families of the optimism telemetry and the WAL.
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	page := string(body)
	for _, family := range []string{
		"# TYPE otp_reorder_total counter",
		"# TYPE otp_opt_def_latency_seconds histogram",
		"# TYPE wal_fsync_seconds histogram",
		`otp_commits_total{shard="0",site="0"}`,
		`otp_opt_def_latency_seconds_bucket{shard="0",site="0",le="+Inf"}`,
	} {
		if !strings.Contains(page, family) {
			t.Fatalf("/metrics missing %q:\n%s", family, page)
		}
	}

	// /cluster/metrics: the federated scrape of this one-member cluster
	// carries the member's series site-labelled plus the agg rollups.
	resp, err = http.Get("http://" + httpAddr + "/cluster/metrics")
	if err != nil {
		t.Fatalf("scrape /cluster/metrics: %v", err)
	}
	body, err = io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatalf("read /cluster/metrics: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/cluster/metrics status %d", resp.StatusCode)
	}
	fed := string(body)
	for _, line := range []string{
		`otp_commits_total{shard="0",site="0"}`,
		`otp_commits_total{agg="sum",shard="0"}`,
	} {
		if !strings.Contains(fed, line) {
			t.Fatalf("/cluster/metrics missing %q:\n%s", line, fed)
		}
	}

	// WATCH: the flight recorder streams at least the epoch-1 bootstrap
	// configuration install as an EVENT line.
	wc := newProtoConn(t, clientAddr)
	defer wc.close()
	if reply := wc.roundTrip("WATCH"); reply != "WATCH streaming" {
		t.Fatalf("WATCH header: %q", reply)
	}
	ev := wc.readLine()
	if !strings.HasPrefix(ev, "EVENT {") || !strings.Contains(ev, "epoch-change") {
		t.Fatalf("WATCH first event: %q", ev)
	}
}
